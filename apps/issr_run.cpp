// issr_run — parallel experiment driver for the ISSR simulator.
//
// Expands a scenario matrix (kernel × variant × index width × matrix
// family × density × core count), fans the simulations across a worker
// pool, and writes machine-readable JSON + CSV results. Results are a
// pure function of the scenario matrix: any --jobs value produces
// bytewise identical output files.
//
//   $ issr_run --kernel csrmv --densities 0.01,0.1 --cores 1,8 --jobs 4
//
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "driver/report.hpp"
#include "driver/runner.hpp"
#include "driver/scenario.hpp"

using namespace issr;

namespace {

constexpr const char* kUsage = R"(issr_run — parallel ISSR experiment driver

Usage: issr_run [options]

Scenario matrix axes (comma-separated lists):
  --kernels LIST     kernels to sweep: spvv, csrmv        [csrmv]
  --kernel NAME      shorthand for a single-kernel sweep
  --variants LIST    base, ssr, issr                      [base,ssr,issr]
  --widths LIST      index widths: 16, 32                 [16,32]
  --families LIST    uniform, banded, powerlaw, torus     [uniform]
  --densities LIST   nonzero fraction per row             [0.05]
  --cores LIST       1 = single CC, >1 = cluster workers  [1]

Workload shape:
  --rows N           matrix rows (csrmv; ignored by spvv) [192]
  --cols N           matrix cols / spvv vector length     [256]
  --seed N           base seed for workload generation    [42]

Execution and output:
  --jobs N           worker threads                       [1]
  --out PREFIX       write PREFIX.json and PREFIX.csv     [issr_run_results]
  --list             print the expanded scenarios and exit
  --help             this text

Combinations with no implemented kernel (SpVV with cores > 1) are skipped
during expansion. Exit status is nonzero if any scenario's simulated
result fails validation against the golden host reference.
)";

[[noreturn]] void die(const std::string& msg) {
  std::fprintf(stderr, "issr_run: %s (try --help)\n", msg.c_str());
  std::exit(2);
}

std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= s.size()) {
    const std::size_t comma = s.find(',', begin);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > begin) out.push_back(s.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return out;
}

/// Parse each comma-separated element of `list` with `parse`, or die
/// naming the offending element.
template <typename T, typename Parse>
std::vector<T> parse_list(const std::string& flag, const std::string& list,
                          Parse parse) {
  std::vector<T> out;
  for (const auto& item : split_list(list)) {
    T value;
    if (!parse(item, value)) die("bad " + flag + " value '" + item + "'");
    out.push_back(value);
  }
  if (out.empty()) die(flag + " list is empty");
  return out;
}

std::uint64_t parse_u64(const std::string& flag, const std::string& s,
                        std::uint64_t max = UINT64_MAX) {
  // strtoull silently wraps negatives, so reject anything but digits.
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos) {
    die("bad " + flag + " value '" + s + "'");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || errno == ERANGE || v > max) {
    die("bad " + flag + " value '" + s + "'");
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  driver::ScenarioMatrix matrix;
  unsigned jobs = 1;
  bool list_only = false;
  std::string out_prefix = "issr_run_results";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    }
    if (arg == "--list") {
      list_only = true;
      continue;
    }
    // Every remaining flag takes one value; fetching it inside each
    // branch keeps the dispatch chain the single source of truth (an
    // unknown flag reaches the final else instead of being misreported
    // as missing its value).
    const auto val = [&]() -> std::string {
      if (i + 1 >= argc) die("missing value for " + arg);
      return argv[++i];
    };

    if (arg == "--kernel" || arg == "--kernels") {
      matrix.kernels = parse_list<driver::Kernel>(
          arg, val(), [](const std::string& s, driver::Kernel& k) {
            return driver::parse_kernel(s, k);
          });
    } else if (arg == "--variants") {
      matrix.variants = parse_list<kernels::Variant>(
          arg, val(), [](const std::string& s, kernels::Variant& v) {
            return driver::parse_variant(s, v);
          });
    } else if (arg == "--widths") {
      matrix.widths = parse_list<sparse::IndexWidth>(
          arg, val(), [](const std::string& s, sparse::IndexWidth& w) {
            return driver::parse_width(s, w);
          });
    } else if (arg == "--families") {
      matrix.families = parse_list<sparse::MatrixFamily>(
          arg, val(), [](const std::string& s, sparse::MatrixFamily& f) {
            return driver::parse_family(s, f);
          });
    } else if (arg == "--densities") {
      matrix.densities = parse_list<double>(
          arg, val(), [](const std::string& s, double& d) {
            char* end = nullptr;
            d = std::strtod(s.c_str(), &end);
            return end != s.c_str() && *end == '\0' && d > 0.0 && d <= 1.0;
          });
    } else if (arg == "--cores") {
      matrix.cores = parse_list<unsigned>(
          arg, val(), [](const std::string& s, unsigned& c) {
            char* end = nullptr;
            const unsigned long v = std::strtoul(s.c_str(), &end, 10);
            if (end == s.c_str() || *end != '\0' || v == 0 || v > 64) {
              return false;
            }
            c = static_cast<unsigned>(v);
            return true;
          });
    } else if (arg == "--rows") {
      matrix.rows = static_cast<std::uint32_t>(parse_u64(arg, val(), 1u << 20));
    } else if (arg == "--cols") {
      matrix.cols = static_cast<std::uint32_t>(parse_u64(arg, val(), 1u << 20));
    } else if (arg == "--seed") {
      matrix.base_seed = parse_u64(arg, val());
    } else if (arg == "--jobs") {
      jobs = static_cast<unsigned>(parse_u64(arg, val(), 1024));
      if (jobs == 0) die("--jobs must be >= 1");
    } else if (arg == "--out") {
      out_prefix = val();
    } else {
      die("unknown option '" + arg + "'");
    }
  }
  if (matrix.rows == 0 || matrix.cols == 0) die("--rows/--cols must be >= 1");

  const auto scenarios = matrix.expand();
  if (scenarios.empty()) die("scenario matrix expanded to zero scenarios");

  if (list_only) {
    bool derived_shape = false;
    for (const auto& s : scenarios) {
      // Torus (fixed 5-point grid) and banded (square) derive their
      // actual shape from the request; results files record actual dims.
      const bool derived = s.family == sparse::MatrixFamily::kTorus ||
                           s.family == sparse::MatrixFamily::kBanded;
      derived_shape |= derived;
      std::printf("%s  rows=%u cols=%u target_nnz/row=%u%s "
                  "seed=0x%016llx\n",
                  s.name().c_str(), s.rows, s.cols, s.row_nnz(),
                  derived ? " (shape derived by family)" : "",
                  static_cast<unsigned long long>(s.seed));
    }
    std::printf("%zu scenarios\n", scenarios.size());
    if (derived_shape) {
      std::printf("note: torus/banded families derive their (square) "
                  "shape from the request; the listed rows/cols are the "
                  "generated dimensions\n");
    }
    return 0;
  }

  std::printf("issr_run: %zu scenarios, %u worker thread%s\n",
              scenarios.size(), jobs, jobs == 1 ? "" : "s");
  const auto results = driver::run_scenarios(scenarios, jobs);

  driver::results_table(results).print();

  const std::string json_path = out_prefix + ".json";
  const std::string csv_path = out_prefix + ".csv";
  if (!driver::write_text_file(json_path, driver::results_to_json(results))) {
    std::fprintf(stderr, "issr_run: failed to write %s\n", json_path.c_str());
    return 1;
  }
  if (!driver::write_text_file(csv_path, driver::results_to_csv(results))) {
    std::fprintf(stderr, "issr_run: failed to write %s\n", csv_path.c_str());
    return 1;
  }
  std::printf("wrote %s and %s\n", json_path.c_str(), csv_path.c_str());

  unsigned failures = 0;
  for (const auto& r : results) {
    if (!r.ok) {
      std::fprintf(stderr, "FAIL: %s did not match the host reference\n",
                   r.scenario.name().c_str());
      ++failures;
    }
  }
  if (failures) {
    std::fprintf(stderr, "issr_run: %u/%zu scenarios failed validation\n",
                 failures, results.size());
    return 1;
  }
  return 0;
}
