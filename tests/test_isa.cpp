// ISA tests: golden encodings against the RISC-V spec, encode/decode
// round-trip properties over randomized instructions, assembler label
// resolution and li expansion.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "isa/assembler.hpp"
#include "isa/encoding.hpp"
#include "isa/program.hpp"

namespace issr::isa {
namespace {

Inst mk(Op op, unsigned rd = 0, unsigned rs1 = 0, unsigned rs2 = 0,
        std::int32_t imm = 0) {
  Inst i;
  i.op = op;
  i.rd = static_cast<std::uint8_t>(rd);
  i.rs1 = static_cast<std::uint8_t>(rs1);
  i.rs2 = static_cast<std::uint8_t>(rs2);
  i.imm = imm;
  return i;
}

// Golden encodings cross-checked against the RISC-V ISA manual / gas.
TEST(Encoding, GoldenValues) {
  EXPECT_EQ(encode(mk(Op::kAddi, 1, 0, 0, 1)), 0x00100093u);  // addi ra,zero,1
  EXPECT_EQ(encode(mk(Op::kAddi, 0, 0, 0, 0)), 0x00000013u);  // nop
  EXPECT_EQ(encode(mk(Op::kAdd, 3, 1, 2)), 0x002081b3u);      // add gp,ra,sp
  EXPECT_EQ(encode(mk(Op::kLui, 5, 0, 0, 0x12345000)),
            0x123452b7u);                                     // lui t0,0x12345
  EXPECT_EQ(encode(mk(Op::kLw, 6, 5, 0, 16)), 0x0102a303u);   // lw t1,16(t0)
  EXPECT_EQ(encode(mk(Op::kSw, 0, 5, 6, 16)), 0x0062a823u);   // sw t1,16(t0)
  EXPECT_EQ(encode(mk(Op::kEcall)), 0x00000073u);
  EXPECT_EQ(encode(mk(Op::kEbreak)), 0x00100073u);
  EXPECT_EQ(encode(mk(Op::kFld, 1, 10, 0, 8)), 0x00853087u);  // fld ft1,8(a0)
  EXPECT_EQ(encode(mk(Op::kMul, 10, 11, 12)), 0x02c58533u);   // mul a0,a1,a2
}

TEST(Encoding, BranchOffsetEncoding) {
  // bne x1, x2, -4 (backward branch to previous instruction).
  const auto word = encode(mk(Op::kBne, 0, 1, 2, -4));
  const auto back = decode(word);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->op, Op::kBne);
  EXPECT_EQ(back->imm, -4);
}

TEST(Encoding, JalRange) {
  for (const std::int32_t off : {-1048576, -4, 0, 4, 1048574}) {
    const auto word = encode(mk(Op::kJal, 1, 0, 0, off & ~1));
    const auto back = decode(word);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->imm, off & ~1);
  }
}

TEST(Encoding, DecodeRejectsGarbage) {
  EXPECT_FALSE(decode(0x00000000).has_value());
  EXPECT_FALSE(decode(0xffffffff).has_value());
}

TEST(Encoding, FrepFieldsRoundTrip) {
  Inst f;
  f.op = Op::kFrep;
  f.rs1 = 7;
  f.frep_insts = 3;
  f.frep_stagger_max = 5;
  f.frep_stagger_mask = 0b1001;
  const auto back = decode(encode(f));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, f);
}

TEST(Encoding, FrepBoundaryFields) {
  // Every field at its 4-bit ceiling survives the round trip.
  Inst f;
  f.op = Op::kFrep;
  f.rs1 = 31;
  f.frep_insts = 15;
  f.frep_stagger_max = 15;
  f.frep_stagger_mask = 15;
  const auto back = decode(encode(f));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, f);
}

TEST(Encoding, FrepZeroInstsDecodesAsNoOpLoop) {
  // The assembler and encoder never produce frep_insts == 0, but the
  // encoding can hold it and the sequencer defines it as an empty loop
  // (tests/test_core.cpp FrepEdge.ZeroInstsIsNoOpLoop) — decode must not
  // turn it into a fetch fault. Build the word by clearing the insts
  // field of a legal FREP.
  Inst f;
  f.op = Op::kFrep;
  f.rs1 = 5;
  f.frep_insts = 1;
  const insn_word_t word = encode(f) & ~(0xFu << 20);
  const auto back = decode(word);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->op, Op::kFrep);
  EXPECT_EQ(back->frep_insts, 0);
  EXPECT_EQ(back->rs1, 5);
}

TEST(Encoding, CsrImmediateForms) {
  Inst i;
  i.op = Op::kCsrrsi;
  i.rd = 3;
  i.csr = 0x7c0;
  i.imm = 17;
  const auto back = decode(encode(i));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, i);
}

// Property: encode/decode round-trips across the full opcode set with
// randomized fields.
class EncodeDecodeRoundTrip : public ::testing::TestWithParam<Op> {};

TEST_P(EncodeDecodeRoundTrip, RandomizedFields) {
  const Op op = GetParam();
  Rng rng(static_cast<std::uint64_t>(op) * 977 + 3);
  for (int trial = 0; trial < 50; ++trial) {
    Inst i;
    i.op = op;
    i.rd = static_cast<std::uint8_t>(rng.uniform_int(0, 31));
    i.rs1 = static_cast<std::uint8_t>(rng.uniform_int(0, 31));
    i.rs2 = static_cast<std::uint8_t>(rng.uniform_int(0, 31));
    i.rs3 = static_cast<std::uint8_t>(rng.uniform_int(0, 31));
    switch (op) {
      case Op::kLui: case Op::kAuipc:
        i.rs1 = i.rs2 = i.rs3 = 0;
        i.imm = static_cast<std::int32_t>(rng.uniform_int(0, 0xfffff) << 12);
        break;
      case Op::kJal:
        i.rs1 = i.rs2 = i.rs3 = 0;
        i.imm = static_cast<std::int32_t>(
                    static_cast<std::int64_t>(rng.uniform_int(0, (1 << 20) - 1)) -
                    (1 << 19)) *
                2;
        break;
      case Op::kBeq: case Op::kBne: case Op::kBlt: case Op::kBge:
      case Op::kBltu: case Op::kBgeu:
        i.rd = i.rs3 = 0;
        i.imm = static_cast<std::int32_t>(
                    static_cast<std::int64_t>(rng.uniform_int(0, (1 << 12) - 1)) -
                    (1 << 11)) *
                2;
        break;
      case Op::kSlli: case Op::kSrli: case Op::kSrai:
        i.rs2 = i.rs3 = 0;
        i.imm = static_cast<std::int32_t>(rng.uniform_int(0, 63));
        break;
      case Op::kCsrrw: case Op::kCsrrs: case Op::kCsrrc:
        i.rs2 = i.rs3 = 0;
        i.csr = static_cast<std::uint16_t>(rng.uniform_int(0, 0xfff));
        i.imm = 0;
        break;
      case Op::kCsrrwi: case Op::kCsrrsi: case Op::kCsrrci:
        i.rs1 = i.rs2 = i.rs3 = 0;
        i.csr = static_cast<std::uint16_t>(rng.uniform_int(0, 0xfff));
        i.imm = static_cast<std::int32_t>(rng.uniform_int(0, 31));
        break;
      case Op::kEcall: case Op::kEbreak: case Op::kFence:
        i = Inst{};
        i.op = op;
        break;
      case Op::kFrep:
        i.rd = i.rs2 = i.rs3 = 0;
        i.frep_insts = static_cast<std::uint8_t>(rng.uniform_int(1, 15));
        i.frep_stagger_max =
            static_cast<std::uint8_t>(rng.uniform_int(0, 15));
        i.frep_stagger_mask =
            static_cast<std::uint8_t>(rng.uniform_int(0, 15));
        break;
      case Op::kFsqrtD: case Op::kFcvtWD: case Op::kFcvtWuD: case Op::kFmvXD:
      case Op::kFcvtDW: case Op::kFcvtDWu: case Op::kFmvDX:
        i.rs2 = i.rs3 = 0;
        break;
      case Op::kFmaddD: case Op::kFmsubD: case Op::kFnmsubD:
      case Op::kFnmaddD:
        break;  // all four registers used
      default: {
        // I/S-type immediates; R-type ops ignore imm.
        i.rs3 = 0;
        const bool is_i_type =
            op_is_int_load(op) || op == Op::kAddi || op == Op::kSlti ||
            op == Op::kSltiu || op == Op::kXori || op == Op::kOri ||
            op == Op::kAndi || op == Op::kJalr || op == Op::kFld;
        const bool has_imm = is_i_type || op_is_store(op);
        i.imm = has_imm ? static_cast<std::int32_t>(
                              static_cast<std::int64_t>(
                                  rng.uniform_int(0, (1 << 12) - 1)) -
                              (1 << 11))
                        : 0;
        if (op_is_store(op) || op_is_branch(op)) i.rd = 0;
        if (is_i_type) i.rs2 = 0;  // rs2 not encoded in I-type
        break;
      }
    }
    const auto word = encode(i);
    const auto back = decode(word);
    ASSERT_TRUE(back.has_value()) << op_name(op) << " word=" << word;
    EXPECT_EQ(*back, i) << op_name(op);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, EncodeDecodeRoundTrip,
    ::testing::Values(
        Op::kLui, Op::kAuipc, Op::kJal, Op::kJalr, Op::kBeq, Op::kBne,
        Op::kBlt, Op::kBge, Op::kBltu, Op::kBgeu, Op::kLb, Op::kLh, Op::kLw,
        Op::kLd, Op::kLbu, Op::kLhu, Op::kLwu, Op::kSb, Op::kSh, Op::kSw,
        Op::kSd, Op::kAddi, Op::kSlti, Op::kSltiu, Op::kXori, Op::kOri,
        Op::kAndi, Op::kSlli, Op::kSrli, Op::kSrai, Op::kAdd, Op::kSub,
        Op::kSll, Op::kSlt, Op::kSltu, Op::kXor, Op::kSrl, Op::kSra, Op::kOr,
        Op::kAnd, Op::kMul, Op::kMulh, Op::kDiv, Op::kDivu, Op::kRem,
        Op::kRemu, Op::kCsrrw, Op::kCsrrs, Op::kCsrrc, Op::kCsrrwi,
        Op::kCsrrsi, Op::kCsrrci, Op::kFld, Op::kFsd, Op::kFmaddD,
        Op::kFmsubD, Op::kFnmsubD, Op::kFnmaddD, Op::kFaddD, Op::kFsubD,
        Op::kFmulD, Op::kFdivD, Op::kFsqrtD, Op::kFsgnjD, Op::kFsgnjnD,
        Op::kFsgnjxD, Op::kFminD, Op::kFmaxD, Op::kFcvtDW, Op::kFcvtDWu,
        Op::kFcvtWD, Op::kFcvtWuD, Op::kFmvXD, Op::kFmvDX, Op::kFeqD,
        Op::kFltD, Op::kFleD, Op::kFrep),
    [](const auto& info) {
      std::string n = op_name(info.param);
      for (auto& ch : n) if (ch == '.') ch = '_';
      return n;
    });

TEST(Disassemble, ProducesReadableText) {
  EXPECT_EQ(disassemble(mk(Op::kAddi, 1, 0, 0, 1)), "addi ra, zero, 1");
  EXPECT_EQ(disassemble(mk(Op::kLw, 6, 5, 0, 16)), "lw t1, 16(t0)");
  Inst f;
  f.op = Op::kFmaddD;
  f.rd = 2;
  f.rs1 = 0;
  f.rs2 = 1;
  f.rs3 = 2;
  EXPECT_EQ(disassemble(f), "fmadd.d ft2, ft0, ft1, ft2");
}

TEST(Assembler, BackwardAndForwardBranches) {
  Assembler a;
  Label fwd = a.make_label();
  a.addi(kT0, kZero, 3);
  Label loop = a.here();
  a.addi(kT0, kT0, -1);
  a.beq(kT0, kZero, fwd);
  a.j(loop);
  a.bind(fwd);
  a.ecall();
  const auto prog = a.assemble();
  ASSERT_EQ(prog.size(), 5u);
  // beq at index 2 jumps +2 insts (8 bytes); jal at 3 jumps -2 (-8).
  EXPECT_EQ(prog.insts()[2].imm, 8);
  EXPECT_EQ(prog.insts()[3].imm, -8);
}

TEST(Assembler, LiExpandsAllRanges) {
  Rng rng(61);
  std::vector<std::int64_t> values = {0,       1,      -1,      2047,
                                      -2048,   2048,   0x7fffffff,
                                      -0x80000000ll,   0x123456789abcdef0ll,
                                      -0x123456789abcdef0ll};
  for (int i = 0; i < 40; ++i) {
    values.push_back(static_cast<std::int64_t>(rng.engine()()));
  }
  for (const auto v : values) {
    Assembler a;
    a.li(kT0, v);
    a.ecall();
    const auto prog = a.assemble();
    EXPECT_GE(prog.size(), 2u);
    EXPECT_LE(prog.size(), 10u);
    // Every emitted word must decode.
    for (const auto w : prog.words()) {
      EXPECT_TRUE(decode(w).has_value());
    }
  }
}

TEST(Program, FetchByPc) {
  Assembler a;
  a.nop();
  a.ecall();
  const auto prog = a.assemble();
  EXPECT_TRUE(prog.contains_pc(Program::kBaseAddr));
  EXPECT_TRUE(prog.contains_pc(Program::kBaseAddr + 4));
  EXPECT_FALSE(prog.contains_pc(Program::kBaseAddr + 8));
  EXPECT_FALSE(prog.contains_pc(Program::kBaseAddr + 2));
  EXPECT_EQ(prog.fetch(Program::kBaseAddr + 4).op, Op::kEcall);
}

TEST(Assembler, ListingMentionsOpcodes) {
  Assembler a;
  a.fmadd_d(kFt2, kFt0, kFt1, kFt2);
  const auto text = a.listing();
  EXPECT_NE(text.find("fmadd.d"), std::string::npos);
}

}  // namespace
}  // namespace issr::isa
