// §III-B layout flexibility: the CsrMV/CsrMM kernels "support
// multiplication of any power-of-two-strided dense axis with a CSR or CSC
// matrix from either side". These tests realize the claimed products by
// reinterpretation: y^T = x^T * A uses CSC(A) viewed as CSR(A^T).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/sim.hpp"
#include "kernels/csrmv.hpp"
#include "sparse/csc.hpp"
#include "sparse/generate.hpp"
#include "sparse/reference.hpp"

namespace issr {
namespace {

using kernels::Variant;
using sparse::IndexWidth;

sparse::DenseVector run_csrmv_issr(const sparse::CsrMatrix& a,
                                   const sparse::DenseVector& x) {
  core::CcSim sim;
  kernels::CsrmvArgs args;
  args.ptr = sim.stage_u32(a.ptr());
  args.idcs = sim.stage_indices(a.idcs(), IndexWidth::kU16);
  args.vals = sim.stage(a.vals());
  args.nrows = a.rows();
  args.nnz = a.nnz();
  args.x = sim.stage(x);
  args.y = sim.alloc(8ull * std::max<std::uint32_t>(a.rows(), 1));
  args.width = IndexWidth::kU16;
  sim.set_program(kernels::build_csrmv(Variant::kIssr, args));
  sim.run();
  return sparse::DenseVector(sim.read_f64s(args.y, a.rows()));
}

TEST(CscSide, VectorTimesMatrixViaTransposeView) {
  // y = x^T A  ==  (A^T x): CSC(A)'s arrays are CSR(A^T)'s arrays, so the
  // unmodified CsrMV kernel computes the left-sided product.
  Rng rng(85);
  const auto a = sparse::random_uniform_matrix(rng, 40, 56, 300);
  const auto x = sparse::random_dense_vector(rng, 40);

  const auto csc = sparse::CscMatrix::from_csr(a);
  const auto at_csr = csc.transpose_as_csr();  // zero-copy view semantics
  const auto y = run_csrmv_issr(at_csr, x);

  // Reference: y[c] = sum_r A[r][c] * x[r].
  const auto d = a.densify();
  for (std::uint32_t c = 0; c < a.cols(); ++c) {
    double expect = 0;
    for (std::uint32_t r = 0; r < a.rows(); ++r) expect += d.at(r, c) * x[r];
    EXPECT_NEAR(y[c], expect, 1e-9 + 1e-9 * std::abs(expect)) << "col " << c;
  }
}

TEST(CscSide, CscMatrixVectorProductViaConversion) {
  // Right-sided product with a CSC operand: convert to CSR once (the
  // format library's to_csr) and stream as usual.
  Rng rng(86);
  const auto csr = sparse::random_uniform_matrix(rng, 31, 27, 200);
  const auto csc = sparse::CscMatrix::from_csr(csr);
  const auto x = sparse::random_dense_vector(rng, 27);
  const auto y = run_csrmv_issr(csc.to_csr(), x);
  const auto expect = sparse::ref_csrmv(csr, x);
  EXPECT_TRUE(sparse::allclose(y, expect, 1e-9, 1e-9));
}

TEST(CscSide, SymmetricMatrixEitherSideAgrees) {
  // For symmetric A the two sides must coincide: A x == (x^T A)^T.
  Rng rng(87);
  sparse::CooMatrix coo(24, 24);
  for (int k = 0; k < 60; ++k) {
    const auto r = static_cast<std::uint32_t>(rng.uniform_int(0, 23));
    const auto c = static_cast<std::uint32_t>(rng.uniform_int(0, 23));
    const double v = rng.normal();
    coo.add(r, c, v);
    if (r != c) coo.add(c, r, v);
  }
  const auto a = sparse::CsrMatrix::from_coo(std::move(coo));
  const auto x = sparse::random_dense_vector(rng, 24);

  const auto right = run_csrmv_issr(a, x);
  const auto left =
      run_csrmv_issr(sparse::CscMatrix::from_csr(a).transpose_as_csr(), x);
  EXPECT_TRUE(sparse::allclose(right, left, 1e-9, 1e-9));
}

}  // namespace
}  // namespace issr
