// Core tests: FPU semantics, Snitch program execution (ALU, memory,
// branches, CSRs, mul/div), FPU-subsystem offloading (pseudo-dual-issue),
// FREP loops with register staggering, and streamer CSR configuration.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "core/engine.hpp"
#include "core/fpu.hpp"
#include "core/sim.hpp"
#include "isa/assembler.hpp"
#include "kernels/kargs.hpp"

namespace issr::core {
namespace {

using namespace issr::isa;

TEST(Fpu, ComputeSemantics) {
  EXPECT_EQ(fpu_compute(Op::kFmaddD, 2, 3, 4), 10.0);
  EXPECT_EQ(fpu_compute(Op::kFmsubD, 2, 3, 4), 2.0);
  EXPECT_EQ(fpu_compute(Op::kFnmsubD, 2, 3, 4), -2.0);
  EXPECT_EQ(fpu_compute(Op::kFnmaddD, 2, 3, 4), -10.0);
  EXPECT_EQ(fpu_compute(Op::kFaddD, 1.5, 2.5, 0), 4.0);
  EXPECT_EQ(fpu_compute(Op::kFsubD, 1.5, 2.5, 0), -1.0);
  EXPECT_EQ(fpu_compute(Op::kFmulD, 3, -2, 0), -6.0);
  EXPECT_EQ(fpu_compute(Op::kFdivD, 7, 2, 0), 3.5);
  EXPECT_EQ(fpu_compute(Op::kFsqrtD, 9, 0, 0), 3.0);
  EXPECT_EQ(fpu_compute(Op::kFsgnjD, 3, -1, 0), -3.0);
  EXPECT_EQ(fpu_compute(Op::kFsgnjnD, 3, -1, 0), 3.0);
  EXPECT_EQ(fpu_compute(Op::kFsgnjxD, -3, -1, 0), 3.0);
  EXPECT_EQ(fpu_compute(Op::kFminD, 2, 5, 0), 2.0);
  EXPECT_EQ(fpu_compute(Op::kFmaxD, 2, 5, 0), 5.0);
}

TEST(Fpu, IntConversions) {
  EXPECT_EQ(fpu_compute_to_int(Op::kFeqD, 2, 2), 1u);
  EXPECT_EQ(fpu_compute_to_int(Op::kFltD, 2, 2), 0u);
  EXPECT_EQ(fpu_compute_to_int(Op::kFleD, 2, 2), 1u);
  EXPECT_EQ(fpu_compute_to_int(Op::kFcvtWD, -3.7, 0), static_cast<std::uint64_t>(-3));
  EXPECT_EQ(fpu_compute_from_int(Op::kFcvtDW, static_cast<std::uint64_t>(-5)),
            -5.0);
  const double pi = 3.14159;
  EXPECT_EQ(fpu_compute_from_int(
                Op::kFmvDX, fpu_compute_to_int(Op::kFmvXD, pi, 0)),
            pi);
}

TEST(Fpu, LatencyTable) {
  FpuParams p;
  EXPECT_EQ(fpu_latency(p, Op::kFmaddD), p.fma_latency);
  EXPECT_EQ(fpu_latency(p, Op::kFdivD), p.div_latency);
  EXPECT_EQ(fpu_latency(p, Op::kFsqrtD), p.sqrt_latency);
  EXPECT_EQ(fpu_latency(p, Op::kFsgnjD), p.misc_latency);
  EXPECT_TRUE(fpu_is_iterative(Op::kFdivD));
  EXPECT_FALSE(fpu_is_iterative(Op::kFmaddD));
}

/// Run an assembled program to completion and return the sim.
CcSimResult run_program(CcSim& sim, Assembler& a) {
  sim.set_program(a.assemble());
  return sim.run(1'000'000);
}

TEST(Snitch, AluAndBranches) {
  CcSim sim;
  Assembler a;
  // Compute sum 1..10 with a loop; store at kResult.
  const addr_t result = sim.alloc(8);
  a.li(kT0, 10);
  a.li(kT1, 0);
  Label loop = a.here();
  a.add(kT1, kT1, kT0);
  a.addi(kT0, kT0, -1);
  a.bne(kT0, kZero, loop);
  a.li(kT2, static_cast<std::int64_t>(result));
  a.sd(kT1, kT2, 0);
  kernels::emit_halt(a);
  run_program(sim, a);
  EXPECT_EQ(sim.mem().load_u64(result), 55u);
}

TEST(Snitch, LoadStoreAllWidths) {
  CcSim sim;
  const addr_t src = sim.alloc(16);
  const addr_t dst = sim.alloc(64);
  sim.mem().store_u64(src, 0xfedc'ba98'7654'3210ull);
  Assembler a;
  a.li(kS1, static_cast<std::int64_t>(src));
  a.li(kS2, static_cast<std::int64_t>(dst));
  a.lb(kT0, kS1, 0);
  a.sd(kT0, kS2, 0);
  a.lbu(kT0, kS1, 0);
  a.sd(kT0, kS2, 8);
  a.lh(kT0, kS1, 0);
  a.sd(kT0, kS2, 16);
  a.lhu(kT0, kS1, 0);
  a.sd(kT0, kS2, 24);
  a.lw(kT0, kS1, 4);
  a.sd(kT0, kS2, 32);
  a.lwu(kT0, kS1, 4);
  a.sd(kT0, kS2, 40);
  a.ld(kT0, kS1, 0);
  a.sd(kT0, kS2, 48);
  kernels::emit_halt(a);
  run_program(sim, a);
  EXPECT_EQ(sim.mem().load_u64(dst + 0), 0x10u);  // lb 0x10 positive
  EXPECT_EQ(sim.mem().load_u64(dst + 8), 0x10u);
  EXPECT_EQ(sim.mem().load_u64(dst + 16), 0x3210u);
  EXPECT_EQ(sim.mem().load_u64(dst + 24), 0x3210u);
  EXPECT_EQ(sim.mem().load_u64(dst + 32), 0xffff'ffff'fedc'ba98ull);  // lw sx
  EXPECT_EQ(sim.mem().load_u64(dst + 40), 0xfedc'ba98ull);            // lwu
  EXPECT_EQ(sim.mem().load_u64(dst + 48), 0xfedc'ba98'7654'3210ull);
}

TEST(Snitch, MulDivRem) {
  CcSim sim;
  const addr_t out = sim.alloc(32);
  Assembler a;
  a.li(kT0, -7);
  a.li(kT1, 3);
  a.li(kS2, static_cast<std::int64_t>(out));
  a.mul(kT2, kT0, kT1);
  a.sd(kT2, kS2, 0);
  a.div(kT2, kT0, kT1);
  a.sd(kT2, kS2, 8);
  a.rem(kT2, kT0, kT1);
  a.sd(kT2, kS2, 16);
  a.remu(kT2, kT1, kT1);
  a.sd(kT2, kS2, 24);
  kernels::emit_halt(a);
  run_program(sim, a);
  EXPECT_EQ(static_cast<std::int64_t>(sim.mem().load_u64(out)), -21);
  EXPECT_EQ(static_cast<std::int64_t>(sim.mem().load_u64(out + 8)), -2);
  EXPECT_EQ(static_cast<std::int64_t>(sim.mem().load_u64(out + 16)), -1);
  EXPECT_EQ(sim.mem().load_u64(out + 24), 0u);
}

TEST(Snitch, CsrCycleAndHartid) {
  CcSim sim;
  const addr_t out = sim.alloc(16);
  Assembler a;
  a.li(kS2, static_cast<std::int64_t>(out));
  a.csrrs(kT0, kCsrMhartid, kZero);
  a.sd(kT0, kS2, 0);
  a.csrrs(kT1, kCsrCycle, kZero);
  a.sd(kT1, kS2, 8);
  kernels::emit_halt(a);
  run_program(sim, a);
  EXPECT_EQ(sim.mem().load_u64(out), 0u);
  EXPECT_GT(sim.mem().load_u64(out + 8), 0u);
}

TEST(Snitch, JalAndRet) {
  CcSim sim;
  const addr_t out = sim.alloc(8);
  Assembler a;
  Label func = a.make_label();
  Label done = a.make_label();
  a.li(kA0, 5);
  a.jal(kRa, func);
  a.li(kS2, static_cast<std::int64_t>(out));
  a.sd(kA0, kS2, 0);
  a.j(done);
  a.bind(func);  // doubles its argument
  a.add(kA0, kA0, kA0);
  a.ret();
  a.bind(done);
  kernels::emit_halt(a);
  run_program(sim, a);
  EXPECT_EQ(sim.mem().load_u64(out), 10u);
}

TEST(Fpss, FpArithmeticThroughOffload) {
  CcSim sim;
  const addr_t in = sim.alloc(16);
  const addr_t out = sim.alloc(8);
  sim.mem().store_f64(in, 2.5);
  sim.mem().store_f64(in + 8, 4.0);
  Assembler a;
  a.li(kS1, static_cast<std::int64_t>(in));
  a.li(kS2, static_cast<std::int64_t>(out));
  a.fld(kFa0, kS1, 0);
  a.fld(kFa1, kS1, 8);
  a.fmul_d(kFa2, kFa0, kFa1);
  a.fadd_d(kFa2, kFa2, kFa0);
  a.fsd(kFa2, kS2, 0);
  kernels::emit_fpss_sync(a);
  kernels::emit_halt(a);
  run_program(sim, a);
  EXPECT_EQ(sim.read_f64(out), 2.5 * 4.0 + 2.5);
}

TEST(Fpss, FpToIntWritebackAndCompare) {
  CcSim sim;
  const addr_t out = sim.alloc(16);
  Assembler a;
  a.li(kT0, 7);
  a.fcvt_d_w(kFa0, kT0);
  a.li(kT1, 3);
  a.fcvt_d_w(kFa1, kT1);
  a.flt_d(kT2, kFa1, kFa0);  // 3 < 7 -> 1
  a.fcvt_w_d(kT3, kFa0);     // 7
  a.li(kS2, static_cast<std::int64_t>(out));
  a.sd(kT2, kS2, 0);
  a.sd(kT3, kS2, 8);
  kernels::emit_halt(a);
  run_program(sim, a);
  EXPECT_EQ(sim.mem().load_u64(out), 1u);
  EXPECT_EQ(sim.mem().load_u64(out + 8), 7u);
}

TEST(Fpss, PseudoDualIssueOverlapsIntegerWork) {
  // A long fdiv chain should not block independent integer instructions:
  // the core keeps issuing while the FPU subsystem grinds.
  CcSimConfig cfg;
  CcSim sim(cfg);
  const addr_t out = sim.alloc(16);
  Assembler a;
  a.li(kT0, 9);
  a.fcvt_d_w(kFa0, kT0);
  a.fdiv_d(kFa1, kFa0, kFa0);
  a.fdiv_d(kFa1, kFa1, kFa0);  // dependent, iterative
  // Independent integer work the core can run under the divides.
  a.li(kT1, 0);
  for (int i = 0; i < 10; ++i) a.addi(kT1, kT1, 1);
  a.li(kS2, static_cast<std::int64_t>(out));
  a.sd(kT1, kS2, 0);
  a.csrrs(kT2, kCsrCycle, kZero);  // after int work, before fpu sync
  kernels::emit_fpss_sync(a);
  a.csrrs(kT3, kCsrCycle, kZero);  // after sync
  a.sub(kT3, kT3, kT2);
  a.sd(kT3, kS2, 8);
  kernels::emit_halt(a);
  run_program(sim, a);
  EXPECT_EQ(sim.mem().load_u64(out), 10u);
  // The sync had to wait for the divide chain: a nonzero gap proves the
  // core ran ahead of the FPU subsystem.
  EXPECT_GT(sim.mem().load_u64(out + 8), 3u);
}

TEST(Fpss, FrepRepeatsBlock) {
  // FREP over two instructions, 5 iterations: fa0 += 1.0 twice per iter.
  CcSim sim;
  const addr_t out = sim.alloc(8);
  Assembler a;
  a.li(kT0, 1);
  a.fcvt_d_w(kFa1, kT0);  // fa1 = 1.0
  a.fzero(kFa0);
  a.li(kT1, 4);           // 5 iterations
  a.frep(kT1, 2);
  a.fadd_d(kFa0, kFa0, kFa1);
  a.fadd_d(kFa0, kFa0, kFa1);
  a.li(kS2, static_cast<std::int64_t>(out));
  kernels::emit_fpss_sync(a);
  a.fsd(kFa0, kS2, 0);
  kernels::emit_fpss_sync(a);
  kernels::emit_halt(a);
  run_program(sim, a);
  EXPECT_EQ(sim.read_f64(out), 10.0);
}

TEST(Fpss, FrepStaggersDestination) {
  // Stagger rd over 4 registers: 8 iterations of "fadd ft2, fa1, fa2"
  // write ft2..ft5 twice each with fa1+fa2.
  CcSim sim;
  const addr_t out = sim.alloc(32);
  Assembler a;
  a.li(kT0, 3);
  a.fcvt_d_w(kFa1, kT0);
  a.li(kT0, 4);
  a.fcvt_d_w(kFa2, kT0);
  kernels::emit_zero_accs(a, kFt2, 4);
  a.li(kT1, 7);  // 8 iterations
  a.frep(kT1, 1, /*stagger_max=*/3, /*stagger_mask=*/0b0001);
  a.fadd_d(kFt2, kFa1, kFa2);
  a.li(kS2, static_cast<std::int64_t>(out));
  kernels::emit_fpss_sync(a);
  a.fsd(kFt2, kS2, 0);
  a.fsd(kFt3, kS2, 8);
  a.fsd(kFt4, kS2, 16);
  a.fsd(kFt5, kS2, 24);
  kernels::emit_fpss_sync(a);
  kernels::emit_halt(a);
  run_program(sim, a);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(sim.read_f64(out + 8 * i), 7.0);
}

TEST(Fpss, FrepSingleIteration) {
  CcSim sim;
  const addr_t out = sim.alloc(8);
  Assembler a;
  a.li(kT0, 2);
  a.fcvt_d_w(kFa1, kT0);
  a.fzero(kFa0);
  a.li(kT1, 0);  // exactly one iteration
  a.frep(kT1, 1);
  a.fadd_d(kFa0, kFa0, kFa1);
  a.li(kS2, static_cast<std::int64_t>(out));
  kernels::emit_fpss_sync(a);
  a.fsd(kFa0, kS2, 0);
  kernels::emit_fpss_sync(a);
  kernels::emit_halt(a);
  run_program(sim, a);
  EXPECT_EQ(sim.read_f64(out), 2.0);
}

// --- FREP edge cases (pinned cycle counts, both execution tiers) -------------
//
// Each shape runs under the compiled tier and the interpreter; the cycle
// counts must match each other bitwise and stay pinned to the committed
// constant, so any timing drift in either tier (or in FREP sequencing
// itself) fails loudly here before the differential fuzzer has to find it.

/// Toggle the process-wide compiled-tier default for one scope.
class ScopedCompiled {
 public:
  explicit ScopedCompiled(bool on) : prev_(engine_compiled_default()) {
    set_engine_compiled_default(on);
  }
  ~ScopedCompiled() { set_engine_compiled_default(prev_); }

 private:
  bool prev_;
};

/// Run `build`'s program under both tiers; expect identical runs at the
/// pinned cycle count and return the compiled-tier sim for value checks.
template <typename Build>
void run_both_tiers_pinned(Build&& build, cycle_t pinned_cycles,
                           const std::function<void(CcSim&)>& check) {
  for (const bool compiled : {true, false}) {
    ScopedCompiled tier(compiled);
    CcSim sim;
    Assembler a;
    build(sim, a);
    const CcSimResult r = run_program(sim, a);
    ASSERT_FALSE(r.aborted) << r.fault.describe();
    EXPECT_EQ(r.cycles, pinned_cycles)
        << (compiled ? "compiled tier" : "interpreter");
    check(sim);
  }
}

TEST(FrepEdge, ZeroInstsIsNoOpLoop) {
  // frep_insts == 0 is unreachable through the assembler (it asserts) but
  // representable in the encoding; the sequencer must treat it as an
  // empty loop and leave the following FP op as a plain one-shot issue.
  for (const bool compiled : {true, false}) {
    ScopedCompiled tier(compiled);
    CcSim sim;
    const addr_t out = sim.alloc(8);
    Assembler a;
    a.li(kT0, 1);
    a.fcvt_d_w(kFa1, kT0);  // fa1 = 1.0
    a.fzero(kFa0);
    a.li(kT1, 9);   // ten iterations of an empty body
    a.frep(kT1, 1); // insts field patched to 0 below
    a.fadd_d(kFa0, kFa0, kFa1);  // NOT the loop body: runs exactly once
    a.li(kS2, static_cast<std::int64_t>(out));
    kernels::emit_fpss_sync(a);
    a.fsd(kFa0, kS2, 0);
    kernels::emit_fpss_sync(a);
    kernels::emit_halt(a);
    const isa::Program assembled = a.assemble();
    std::vector<insn_word_t> words = assembled.words();
    for (std::size_t i = 0; i < assembled.insts().size(); ++i) {
      if (assembled.insts()[i].op == Op::kFrep) words[i] &= ~(0xFu << 20);
    }
    sim.set_program(isa::Program(std::move(words)));
    const CcSimResult r = sim.run(1'000'000);
    ASSERT_FALSE(r.aborted) << r.fault.describe();
    EXPECT_EQ(r.cycles, 13u)
        << (compiled ? "compiled tier" : "interpreter");
    EXPECT_EQ(sim.read_f64(out), 1.0);
  }
}

TEST(FrepEdge, StaggerWrapsAtMaxPlusOne) {
  // stagger_max = 2 staggers rd over ft2..ft4; iteration max+1 must wrap
  // back to ft2. The body reads unstaggered ft2, so the wrap is visible
  // in the values: without it ft2 would stay at 1.0.
  addr_t out = 0;
  run_both_tiers_pinned(
      [&](CcSim& sim, Assembler& a) {
        out = sim.alloc(24);
        a.li(kT0, 1);
        a.fcvt_d_w(kFa1, kT0);  // fa1 = 1.0
        kernels::emit_zero_accs(a, kFt2, 3);
        a.li(kT1, 3);  // four iterations: offsets 0,1,2 then wrap to 0
        a.frep(kT1, 1, /*stagger_max=*/2, /*stagger_mask=*/0b0001);
        a.fadd_d(kFt2, kFt2, kFa1);
        a.li(kS2, static_cast<std::int64_t>(out));
        kernels::emit_fpss_sync(a);
        a.fsd(kFt2, kS2, 0);
        a.fsd(kFt3, kS2, 8);
        a.fsd(kFt4, kS2, 16);
        kernels::emit_fpss_sync(a);
        kernels::emit_halt(a);
      },
      /*pinned_cycles=*/23u,
      [&](CcSim& sim) {
        EXPECT_EQ(sim.read_f64(out), 2.0);      // iter 0 and the wrap
        EXPECT_EQ(sim.read_f64(out + 8), 2.0);  // read ft2 after iter 0
        EXPECT_EQ(sim.read_f64(out + 16), 2.0);
      });
}

TEST(FrepEdge, ReplayOutlivesProgramEnd) {
  // The FREP body is the final FP instruction and the core halts right
  // behind it: replay keeps draining past the halt, and quiescence must
  // wait for the sequencer rather than truncate the loop.
  run_both_tiers_pinned(
      [&](CcSim& sim, Assembler& a) {
        a.li(kT0, 1);
        a.fcvt_d_w(kFa1, kT0);  // fa1 = 1.0
        a.fzero(kFa0);
        a.li(kT1, 49);  // 50 iterations outlive the immediate halt
        a.frep(kT1, 1);
        a.fadd_d(kFa0, kFa0, kFa1);
        kernels::emit_halt(a);
      },
      /*pinned_cycles=*/205u,
      [&](CcSim& sim) {
        EXPECT_EQ(sim.cc().fpss().freg(static_cast<unsigned>(kFa0)), 50.0);
      });
}

TEST(FrepEdge, BackToBackFrepsReplayInOrder) {
  // A second FREP offloaded while the first is still replaying queues
  // behind it; the value pins the ordering (the second loop's read of
  // fa0 must observe the first loop's final sum).
  addr_t out = 0;
  run_both_tiers_pinned(
      [&](CcSim& sim, Assembler& a) {
        out = sim.alloc(16);
        a.li(kT0, 1);
        a.fcvt_d_w(kFa1, kT0);  // fa1 = 1.0
        a.fzero(kFa0);
        a.fzero(kFa2);
        a.li(kT1, 9);
        a.frep(kT1, 1);
        a.fadd_d(kFa0, kFa0, kFa1);  // fa0 = 10 after loop 1
        a.li(kT2, 4);
        a.frep(kT2, 1);
        a.fadd_d(kFa2, kFa2, kFa0);  // fa2 = 5 * 10 after loop 2
        a.li(kS2, static_cast<std::int64_t>(out));
        kernels::emit_fpss_sync(a);
        a.fsd(kFa0, kS2, 0);
        a.fsd(kFa2, kS2, 8);
        kernels::emit_fpss_sync(a);
        kernels::emit_halt(a);
      },
      /*pinned_cycles=*/71u,
      [&](CcSim& sim) {
        EXPECT_EQ(sim.read_f64(out), 10.0);
        EXPECT_EQ(sim.read_f64(out + 8), 50.0);
      });
}

TEST(Streamer, CsrConfigurationArmsJobs) {
  CcSim sim;
  const addr_t data = sim.alloc(64);
  for (int i = 0; i < 8; ++i) sim.mem().store_f64(data + 8 * i, i + 0.5);
  const addr_t out = sim.alloc(8);
  Assembler a;
  kernels::emit_affine_job(a, 0, data, 8);
  kernels::emit_ssr_enable(a);
  a.fzero(kFa0);
  a.li(kT0, 7);
  a.frep(kT0, 1);
  a.fadd_d(kFa0, kFa0, kFt0);
  a.li(kS2, static_cast<std::int64_t>(out));
  kernels::emit_sync_and_disable(a);
  a.fsd(kFa0, kS2, 0);
  kernels::emit_fpss_sync(a);
  kernels::emit_halt(a);
  run_program(sim, a);
  EXPECT_EQ(sim.read_f64(out), 8 * 0.5 + (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7));
}

TEST(Streamer, StatusCsrReflectsActivity) {
  CcSim sim;
  const addr_t data = sim.alloc(8192);
  const addr_t out = sim.alloc(8);
  Assembler a;
  kernels::emit_affine_job(a, 0, data, 1000);  // long-running job
  a.csrrs(kT0, ssr_csr(0, SsrCfgReg::kStatus), kZero);
  a.li(kS2, static_cast<std::int64_t>(out));
  a.sd(kT0, kS2, 0);
  kernels::emit_ssr_enable(a);
  // Drain the stream so the run can finish.
  a.li(kT1, 999);
  a.frep(kT1, 1);
  a.fsgnj_d(kFa0, kFt0, kFt0);
  kernels::emit_sync_and_disable(a);
  kernels::emit_halt(a);
  run_program(sim, a);
  EXPECT_EQ(sim.mem().load_u64(out) & 1u, 1u);  // job active bit
}

TEST(Snitch, BranchPenaltyConfigurable) {
  for (const unsigned pen : {0u, 2u}) {
    CcSimConfig cfg;
    cfg.cc.core.branch_penalty = pen;
    CcSim sim(cfg);
    Assembler a;
    a.li(kT0, 100);
    Label loop = a.here();
    a.addi(kT0, kT0, -1);
    a.bne(kT0, kZero, loop);
    kernels::emit_halt(a);
    const auto r = run_program(sim, a);
    // Loop body: 2 instructions + penalty per taken branch.
    const cycle_t expect = 100 * (2 + pen);
    EXPECT_NEAR(static_cast<double>(r.cycles), static_cast<double>(expect),
                8.0);
  }
}

}  // namespace
}  // namespace issr::core
