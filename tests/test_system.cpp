// Multi-cluster system tests: the inter-cluster barrier's release
// ordering and latency, the cost-balanced row partition, golden-reference
// equality of the cross-cluster CsrMV/CsrMM kernels for every generator
// family at 1/2/4/8 clusters, fast-forward on/off identity, shared-memory
// bandwidth contention, and the driver integration (clusters axis: result
// files bytewise identical across --jobs, dry-run cost column matching
// the scheduler's estimate).
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "driver/report.hpp"
#include "driver/runner.hpp"
#include "driver/scenario.hpp"
#include "driver/sweep.hpp"
#include "sparse/generate.hpp"
#include "sparse/reference.hpp"
#include "system/barrier.hpp"
#include "system/csrmm_sys.hpp"
#include "system/csrmv_sys.hpp"
#include "system/steal.hpp"

namespace issr::system {
namespace {

using kernels::Variant;
using sparse::IndexWidth;

// --- Inter-cluster barrier -------------------------------------------------

TEST(SysBarrier, ReleasesOnlyAfterAllArriveAndLatencyElapses) {
  SysBarrier b(3, 10);  // one tree level (fan-in 4): release = last + 20
  b.arrive(0, 100);
  b.arrive(1, 104);
  EXPECT_FALSE(b.released(0, 105));  // cluster 2 still missing
  EXPECT_FALSE(b.released(1, 1000));
  b.arrive(2, 108);  // completes the generation; release at 128
  EXPECT_EQ(b.generation(), 1u);
  EXPECT_FALSE(b.released(0, 127));
  EXPECT_TRUE(b.released(0, 128));
  EXPECT_TRUE(b.released(1, 128));
  EXPECT_TRUE(b.released(2, 200));
}

TEST(SysBarrier, ZeroLatencyReleasesAtLastArrival) {
  SysBarrier b(2, 0);
  b.arrive(0, 5);
  b.arrive(1, 9);
  EXPECT_TRUE(b.released(0, 9));
  EXPECT_TRUE(b.released(1, 9));
}

TEST(SysBarrier, ReusableAcrossGenerations) {
  SysBarrier b(2, 4);  // one level: release = last arrival + 8
  cycle_t t = 0;
  for (int gen = 1; gen <= 5; ++gen) {
    b.arrive(0, t);
    b.arrive(1, t + 1);
    EXPECT_FALSE(b.released(0, t + 8));
    EXPECT_TRUE(b.released(0, t + 9));
    EXPECT_TRUE(b.released(1, t + 9));
    EXPECT_EQ(b.generation(), static_cast<std::uint64_t>(gen));
    t += 20;
  }
}

TEST(SysBarrier, TreeLevelsFollowFanIn) {
  // levels = ceil(log_fan_in(n)); release latency = 2 * levels * hop.
  EXPECT_EQ(SysBarrier(1, 8).levels(), 0u);
  EXPECT_EQ(SysBarrier(2, 8).levels(), 1u);
  EXPECT_EQ(SysBarrier(4, 8).levels(), 1u);
  EXPECT_EQ(SysBarrier(5, 8).levels(), 2u);
  EXPECT_EQ(SysBarrier(8, 8).levels(), 2u);   // default fan-in 4
  EXPECT_EQ(SysBarrier(8, 8, 2).levels(), 3u);
  EXPECT_EQ(SysBarrier(8, 8, 8).levels(), 1u);
  EXPECT_EQ(SysBarrier(8, 8).release_latency(), 32u);
  EXPECT_EQ(SysBarrier(8, 8, 2).release_latency(), 48u);
  EXPECT_EQ(SysBarrier(16, 3, 2).release_latency(), 24u);
}

TEST(SysBarrier, ReleaseLatencyPropagatesPerLevel) {
  // Deeper trees at the same hop latency release strictly later; the
  // delta is exactly 2 * hop per extra level.
  SysBarrier wide(8, 8, 8);    // 1 level  -> release = last + 16
  SysBarrier deep(8, 8, 2);    // 3 levels -> release = last + 48
  for (unsigned c = 0; c < 8; ++c) {
    wide.arrive(c, 100 + c);
    deep.arrive(c, 100 + c);
  }
  EXPECT_FALSE(wide.released(0, 122));
  EXPECT_TRUE(wide.released(0, 123));
  EXPECT_FALSE(deep.released(0, 154));
  EXPECT_TRUE(deep.released(0, 155));
}

TEST(SysBarrier, ArbitraryFanInArriveReleaseOrdering) {
  // Any arrival order completes the generation; no cluster observes the
  // release before the last arrival's root round trip, regardless of how
  // early it arrived or how lopsided the tree is.
  for (const unsigned fan_in : {2u, 3u, 4u, 7u}) {
    SysBarrier b(7, 5, fan_in);
    const unsigned order[] = {3, 0, 6, 1, 5, 2, 4};
    cycle_t t = 10;
    cycle_t last = 0;
    for (const unsigned c : order) {
      b.arrive(c, t);
      last = t;
      t += 7;
    }
    const cycle_t release = last + b.release_latency();
    for (unsigned c = 0; c < 7; ++c) {
      EXPECT_FALSE(b.released(c, release - 1)) << "fan_in " << fan_in;
      EXPECT_TRUE(b.released(c, release)) << "fan_in " << fan_in;
    }
  }
}

TEST(SysBarrier, ReductionSumsOperandsPerGeneration) {
  SysBarrier b(3, 2);
  b.arrive(0, 0, 10);
  b.arrive(1, 0, 20);
  b.arrive(2, 1, 12);
  EXPECT_EQ(b.reduced(), 42u);
  for (unsigned c = 0; c < 3; ++c) EXPECT_TRUE(b.released(c, 100));
  b.arrive(0, 200, 1);
  b.arrive(1, 200, 2);
  b.arrive(2, 200, 3);
  EXPECT_EQ(b.reduced(), 6u);  // fresh accumulation, not 48
}

TEST(SysBarrier, ReleaseHintExposesOnlyCompletedGenerations) {
  SysBarrier b(2, 4);
  EXPECT_EQ(b.release_hint(0), kCycleNever);  // not arrived
  b.arrive(0, 50);
  EXPECT_EQ(b.release_hint(0), kCycleNever);  // generation still open
  b.arrive(1, 60);
  EXPECT_EQ(b.release_hint(0), 68u);  // 60 + 2 * 1 * 4
  EXPECT_EQ(b.release_hint(1), 68u);
  EXPECT_TRUE(b.released(0, 68));
  EXPECT_EQ(b.release_hint(0), kCycleNever);  // arrival consumed
}

TEST(SysBarrier, ArriveIsIdempotentWhileWaiting) {
  SysBarrier b(2, 0);
  b.arrive(0, 1);
  b.arrive(0, 2);  // re-arrival of the same waiter must not release
  EXPECT_EQ(b.generation(), 0u);
  b.arrive(1, 3);
  EXPECT_EQ(b.generation(), 1u);
}

// --- Cost-balanced row partition -------------------------------------------

TEST(Partition, CoversAllRowsMonotonically) {
  Rng rng(2000);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 500, 256, 20);
  for (const unsigned n : {1u, 2u, 4u, 8u, 13u}) {
    const auto cut = partition_rows_balanced(a, n);
    ASSERT_EQ(cut.size(), n + 1);
    EXPECT_EQ(cut.front(), 0u);
    EXPECT_EQ(cut.back(), a.rows());
    for (unsigned c = 0; c < n; ++c) EXPECT_LE(cut[c], cut[c + 1]);
  }
}

TEST(Partition, BalancesNnzAcrossShards) {
  // Skewed row lengths: the nnz-aware partition must still produce
  // shards within ~2x of the mean cost (a row-count split would not).
  Rng rng(2001);
  const auto a = sparse::powerlaw_matrix(rng, 512, 512, 24.0, 1.2);
  const unsigned n = 4;
  const auto cut = partition_rows_balanced(a, n);
  const double mean = static_cast<double>(a.nnz()) / n;
  for (unsigned c = 0; c < n; ++c) {
    const std::uint64_t shard_nnz = a.ptr()[cut[c + 1]] - a.ptr()[cut[c]];
    EXPECT_LT(static_cast<double>(shard_nnz), 2.0 * mean + 64.0) << "shard " << c;
  }
}

TEST(Partition, MoreClustersThanRowsLeavesTrailingShardsEmpty) {
  Rng rng(2002);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 3, 64, 8);
  const auto cut = partition_rows_balanced(a, 8);
  EXPECT_EQ(cut.front(), 0u);
  EXPECT_EQ(cut.back(), 3u);
}

// --- Work-stealing claim queue ---------------------------------------------

TEST(Steal, WorkQueueServesInSendOrderWithRoundTripLatency) {
  mem::InterconnectConfig nc;
  nc.num_clusters = 2;
  nc.link_latency = 4;
  mem::Interconnect noc(nc);
  SysWorkQueue q(3, 2, nc.link_latency);
  noc.begin_cycle(0);
  ASSERT_TRUE(q.try_request(0, 0, noc));
  ASSERT_TRUE(q.try_request(1, 0, noc));  // its own link: no collision
  EXPECT_TRUE(q.outstanding(0));
  EXPECT_TRUE(q.outstanding(1));
  // Round trip = request hop (4) + serve slot + reply hop (4). Both
  // requests arrive at cycle 4; the atomic unit serves one claim per
  // cycle in arrival (= send) order, so cluster 0's grant is deliverable
  // at cycle 8 and cluster 1's a cycle later.
  std::uint32_t item = 99;
  for (cycle_t t = 1; t < 8; ++t) {
    noc.begin_cycle(t);
    EXPECT_FALSE(q.poll(0, t, noc, item)) << t;
    EXPECT_FALSE(q.poll(1, t, noc, item)) << t;
  }
  noc.begin_cycle(8);
  ASSERT_TRUE(q.poll(0, 8, noc, item));
  EXPECT_EQ(item, 0u);
  EXPECT_FALSE(q.poll(1, 8, noc, item));
  EXPECT_FALSE(q.outstanding(0));
  noc.begin_cycle(9);
  ASSERT_TRUE(q.poll(1, 9, noc, item));
  EXPECT_EQ(item, 1u);
  EXPECT_EQ(q.owners().at(0), 0u);
  EXPECT_EQ(q.owners().at(1), 1u);
}

TEST(Steal, WorkQueueClaimPaysLinkBandwidthAndExhaustsToNumItems) {
  mem::InterconnectConfig nc;
  nc.num_clusters = 1;
  nc.link_latency = 1;
  mem::Interconnect noc(nc);
  SysWorkQueue q(1, 1, nc.link_latency);
  // A data beat already holds the egress link this cycle: the claim is
  // denied and retried, costing real bandwidth like any other message.
  noc.begin_cycle(0);
  ASSERT_TRUE(noc.try_beat(0, mem::Interconnect::Dir::kEgress, 0, 0));
  EXPECT_FALSE(q.try_request(0, 0, noc));
  EXPECT_FALSE(q.outstanding(0));
  noc.begin_cycle(1);
  ASSERT_TRUE(q.try_request(0, 1, noc));
  std::uint32_t item = 99;
  for (cycle_t t = 2;; ++t) {
    noc.begin_cycle(t);
    if (q.poll(0, t, noc, item)) break;
    ASSERT_LT(t, 100u);
  }
  EXPECT_EQ(item, 0u);
  // The queue is now empty: a further claim round-trips the same way
  // and grants the out-of-work sentinel num_items().
  noc.begin_cycle(10);
  ASSERT_TRUE(q.try_request(0, 10, noc));
  for (cycle_t t = 11;; ++t) {
    noc.begin_cycle(t);
    if (q.poll(0, t, noc, item)) break;
    ASSERT_LT(t, 100u);
  }
  EXPECT_EQ(item, q.num_items());
  ASSERT_EQ(q.owners().size(), 1u);
  EXPECT_EQ(q.owners()[0], 0u);
}

TEST(Steal, OrderTilesIsLongestProcessingTimeFirstAndStable) {
  using Tile = cluster::McTilePlan::Tile;
  // Costs (nnz + 8/row): a=18, b=38, c=18, d=108 — LPT order is d, b,
  // then a before c (stable: equal-cost tiles keep row order).
  std::vector<Tile> tiles = {Tile{0, 1, 0, 10}, Tile{1, 2, 10, 40},
                             Tile{2, 3, 40, 50}, Tile{3, 8, 50, 118}};
  steal_order_tiles(tiles);
  ASSERT_EQ(tiles.size(), 4u);
  EXPECT_EQ(tiles[0].row_begin, 3u);
  EXPECT_EQ(tiles[1].row_begin, 1u);
  EXPECT_EQ(tiles[2].row_begin, 0u);
  EXPECT_EQ(tiles[3].row_begin, 2u);
}

// --- Cross-cluster CsrMV ---------------------------------------------------

struct SysCase {
  sparse::MatrixFamily family;
  unsigned clusters;
};

class SystemCsrmv : public ::testing::TestWithParam<SysCase> {};

TEST_P(SystemCsrmv, MatchesReferenceAllFamiliesAllClusterCounts) {
  const auto [family, clusters] = GetParam();
  Rng rng(2100);
  const auto a = sparse::generate_matrix(rng, family, 256, 192, 14);
  const auto x = sparse::random_dense_vector(rng, a.cols());
  SysCsrmvConfig cfg;
  cfg.variant = Variant::kIssr;
  cfg.width = IndexWidth::kU16;
  cfg.system.num_clusters = clusters;
  const auto r = run_csrmv_system(a, x, cfg);
  ASSERT_FALSE(r.system.aborted);
  EXPECT_EQ(r.system.clusters.size(), clusters);
  EXPECT_TRUE(sparse::allclose(r.y, sparse::ref_csrmv(a, x), 1e-9, 1e-9));
  // Exactly one completion barrier generation.
  EXPECT_GT(r.system.cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesByClusters, SystemCsrmv,
    ::testing::Values(SysCase{sparse::MatrixFamily::kUniform, 1},
                      SysCase{sparse::MatrixFamily::kUniform, 2},
                      SysCase{sparse::MatrixFamily::kUniform, 4},
                      SysCase{sparse::MatrixFamily::kUniform, 8},
                      SysCase{sparse::MatrixFamily::kBanded, 1},
                      SysCase{sparse::MatrixFamily::kBanded, 2},
                      SysCase{sparse::MatrixFamily::kBanded, 4},
                      SysCase{sparse::MatrixFamily::kBanded, 8},
                      SysCase{sparse::MatrixFamily::kPowerLaw, 1},
                      SysCase{sparse::MatrixFamily::kPowerLaw, 2},
                      SysCase{sparse::MatrixFamily::kPowerLaw, 4},
                      SysCase{sparse::MatrixFamily::kPowerLaw, 8},
                      SysCase{sparse::MatrixFamily::kTorus, 1},
                      SysCase{sparse::MatrixFamily::kTorus, 2},
                      SysCase{sparse::MatrixFamily::kTorus, 4},
                      SysCase{sparse::MatrixFamily::kTorus, 8}),
    [](const auto& info) {
      std::string name = sparse::to_string(info.param.family);
      name += "_x" + std::to_string(info.param.clusters);
      return name;
    });

TEST(SystemCsrmv, AllVariantsAndWidthsMatchReference) {
  Rng rng(2101);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 128, 160, 12);
  const auto x = sparse::random_dense_vector(rng, a.cols());
  const auto want = sparse::ref_csrmv(a, x);
  for (const Variant v : {Variant::kBase, Variant::kSsr, Variant::kIssr}) {
    for (const IndexWidth w : {IndexWidth::kU16, IndexWidth::kU32}) {
      SysCsrmvConfig cfg;
      cfg.variant = v;
      cfg.width = w;
      cfg.system.num_clusters = 2;
      const auto r = run_csrmv_system(a, x, cfg);
      EXPECT_TRUE(sparse::allclose(r.y, want, 1e-9, 1e-9))
          << kernels::to_string(v);
    }
  }
}

TEST(SystemCsrmv, OneClusterMatchesNClusterResults) {
  // N-cluster vs 1-cluster equality: the simulated y vectors must agree
  // exactly (identical FP operation order within each row).
  Rng rng(2102);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 200, 128, 16);
  const auto x = sparse::random_dense_vector(rng, a.cols());
  SysCsrmvConfig cfg;
  cfg.system.num_clusters = 1;
  const auto r1 = run_csrmv_system(a, x, cfg);
  for (const unsigned n : {2u, 4u, 8u}) {
    cfg.system.num_clusters = n;
    const auto rn = run_csrmv_system(a, x, cfg);
    ASSERT_EQ(rn.y.size(), r1.y.size());
    for (std::size_t i = 0; i < r1.y.size(); ++i) {
      EXPECT_EQ(rn.y[i], r1.y[i]) << "row " << i << " at " << n << " clusters";
    }
  }
}

TEST(SystemCsrmv, FewerRowsThanClustersStillCorrect) {
  Rng rng(2103);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 3, 64, 8);
  const auto x = sparse::random_dense_vector(rng, a.cols());
  SysCsrmvConfig cfg;
  cfg.system.num_clusters = 8;
  const auto r = run_csrmv_system(a, x, cfg);
  EXPECT_TRUE(sparse::allclose(r.y, sparse::ref_csrmv(a, x), 1e-9, 1e-9));
}

TEST(SystemCsrmv, FastForwardIdentity) {
  Rng rng(2104);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 192, 160, 10);
  const auto x = sparse::random_dense_vector(rng, a.cols());
  SysCsrmvConfig cfg;
  cfg.system.num_clusters = 4;
  cfg.system.fast_forward = true;
  const auto ff = run_csrmv_system(a, x, cfg);
  cfg.system.fast_forward = false;
  const auto ref = run_csrmv_system(a, x, cfg);
  EXPECT_EQ(ff.system.cycles, ref.system.cycles);
  EXPECT_EQ(ref.system.ff_skipped, 0u);
  for (std::size_t i = 0; i < ref.y.size(); ++i) EXPECT_EQ(ff.y[i], ref.y[i]);
  for (unsigned c = 0; c < 4; ++c) {
    EXPECT_EQ(ff.system.clusters[c].total_stalls(),
              ref.system.clusters[c].total_stalls());
  }
}

TEST(SystemCsrmv, CyclesScaleDownWithClusterCount) {
  Rng rng(2105);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 512, 256, 48);
  const auto x = sparse::random_dense_vector(rng, a.cols());
  cycle_t prev = 0;
  for (const unsigned n : {1u, 2u, 4u}) {
    SysCsrmvConfig cfg;
    cfg.system.num_clusters = n;
    const auto r = run_csrmv_system(a, x, cfg);
    EXPECT_TRUE(sparse::allclose(r.y, sparse::ref_csrmv(a, x), 1e-9, 1e-9));
    if (prev != 0) {
      EXPECT_LT(r.system.cycles, prev) << n << " clusters";
    }
    prev = r.system.cycles;
  }
}

TEST(SystemCsrmv, SharedBandwidthThrottlesEightClusters) {
  // With a single bank group serving one beat per direction per cycle,
  // eight clusters' DMA engines contend hard at the crossbar; an
  // unthrottled interconnect must be strictly faster. (Both validate.)
  Rng rng(2106);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 512, 192, 24);
  const auto x = sparse::random_dense_vector(rng, a.cols());
  SysCsrmvConfig cfg;
  cfg.system.num_clusters = 8;
  cfg.system.noc.bank_groups = 1;
  cfg.system.noc.group_beats_per_cycle = 1;
  const auto throttled = run_csrmv_system(a, x, cfg);
  cfg.system.noc.link_beats_per_cycle = 0;  // unlimited links...
  cfg.system.noc.bank_groups = 0;           // ...and no crossbar stage
  const auto open = run_csrmv_system(a, x, cfg);
  EXPECT_TRUE(sparse::allclose(throttled.y, sparse::ref_csrmv(a, x), 1e-9, 1e-9));
  EXPECT_TRUE(sparse::allclose(open.y, sparse::ref_csrmv(a, x), 1e-9, 1e-9));
  EXPECT_GT(throttled.system.cycles, open.system.cycles);
}

TEST(SystemCsrmv, ContentionFillsNocStallBucketAndOwnershipIsComplete) {
  Rng rng(2109);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 512, 192, 24);
  const auto x = sparse::random_dense_vector(rng, a.cols());
  SysCsrmvConfig cfg;
  cfg.system.num_clusters = 8;
  cfg.system.noc.bank_groups = 1;  // one group: everyone serializes
  cfg.system.noc.group_beats_per_cycle = 1;
  const auto r = run_csrmv_system(a, x, cfg);
  EXPECT_TRUE(sparse::allclose(r.y, sparse::ref_csrmv(a, x), 1e-9, 1e-9));
  // Worker cycles spent while the cluster's DMA loses NoC arbitration
  // land in the exclusive noc_contention bucket.
  EXPECT_GT(r.system.total_stalls()[trace::Bucket::kNocContention], 0u);
  // The steal run records a complete tile -> cluster ownership map over
  // the shared global plan.
  ASSERT_TRUE(r.steal);
  ASSERT_FALSE(r.plans.empty());
  ASSERT_EQ(r.tile_owner.size(), r.plans[0].tiles.size());
  for (const unsigned owner : r.tile_owner) EXPECT_LT(owner, 8u);
}

TEST(SystemCsrmv, StallBucketsDecomposeSystemCoreCycles) {
  Rng rng(2107);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 128, 128, 12);
  const auto x = sparse::random_dense_vector(rng, a.cols());
  SysCsrmvConfig cfg;
  cfg.system.num_clusters = 2;
  const auto r = run_csrmv_system(a, x, cfg);
  EXPECT_EQ(r.system.total_stalls().total(), r.system.core_cycles());
  const unsigned workers = cfg.system.cluster.num_workers;
  EXPECT_EQ(r.system.core_cycles(),
            r.system.cycles * 2ull * workers);
}

TEST(SystemCsrmv, BarrierLatencyExtendsTheRun) {
  Rng rng(2108);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 96, 96, 8);
  const auto x = sparse::random_dense_vector(rng, a.cols());
  SysCsrmvConfig fast;
  fast.system.num_clusters = 2;
  fast.system.barrier_hop_latency = 0;
  SysCsrmvConfig slow = fast;
  slow.system.barrier_hop_latency = 250;
  const auto rf = run_csrmv_system(a, x, fast);
  const auto rs = run_csrmv_system(a, x, slow);
  // Two clusters form one tree level, so release = 2 * hop after the
  // last arrival. The DMCC arrives as soon as it has dispatched the halt
  // epilogue, so the workers' mailbox-drain tail (a few dozen cycles)
  // overlaps the release latency instead of extending the slow run.
  EXPECT_GE(rs.system.cycles, rf.system.cycles + 450);
}

// --- Cross-cluster CsrMM ---------------------------------------------------

class SystemCsrmm : public ::testing::TestWithParam<SysCase> {};

TEST_P(SystemCsrmm, MatchesReferenceAllFamiliesAllClusterCounts) {
  const auto [family, clusters] = GetParam();
  Rng rng(2200);
  const auto a = sparse::generate_matrix(rng, family, 96, 128, 10);
  const auto b = sparse::random_dense_matrix(rng, a.cols(), 10);
  SysCsrmmConfig cfg;
  cfg.system.num_clusters = clusters;
  cfg.col_block = 4;  // 10 columns -> 3 phases, last one partial
  const auto r = run_csrmm_system(a, b, cfg);
  ASSERT_FALSE(r.system.aborted);
  EXPECT_TRUE(sparse::allclose(r.y, sparse::ref_csrmm(a, b), 1e-9, 1e-9));
  EXPECT_EQ(r.plans.front().num_phases, 3u);
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesByClusters, SystemCsrmm,
    ::testing::Values(SysCase{sparse::MatrixFamily::kUniform, 1},
                      SysCase{sparse::MatrixFamily::kUniform, 2},
                      SysCase{sparse::MatrixFamily::kUniform, 4},
                      SysCase{sparse::MatrixFamily::kUniform, 8},
                      SysCase{sparse::MatrixFamily::kBanded, 2},
                      SysCase{sparse::MatrixFamily::kPowerLaw, 4},
                      SysCase{sparse::MatrixFamily::kTorus, 2}),
    [](const auto& info) {
      std::string name = sparse::to_string(info.param.family);
      name += "_x" + std::to_string(info.param.clusters);
      return name;
    });

TEST(SystemCsrmm, AllVariantsMatchReference) {
  Rng rng(2201);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 64, 96, 9);
  const auto b = sparse::random_dense_matrix(rng, a.cols(), 6);
  const auto want = sparse::ref_csrmm(a, b);
  for (const Variant v : {Variant::kBase, Variant::kSsr, Variant::kIssr}) {
    for (const IndexWidth w : {IndexWidth::kU16, IndexWidth::kU32}) {
      SysCsrmmConfig cfg;
      cfg.variant = v;
      cfg.width = w;
      cfg.system.num_clusters = 2;
      const auto r = run_csrmm_system(a, b, cfg);
      EXPECT_TRUE(sparse::allclose(r.y, want, 1e-9, 1e-9))
          << kernels::to_string(v);
    }
  }
}

TEST(SystemCsrmm, PhaseBarrierGenerationsMatchPlan) {
  // One inter-cluster barrier generation per column phase: the release
  // count is the direct observable of the phase synchronization.
  Rng rng(2202);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 80, 64, 8);
  const auto b = sparse::random_dense_matrix(rng, a.cols(), 16);
  SysCsrmmConfig cfg;
  cfg.system.num_clusters = 4;
  cfg.col_block = 4;  // 4 phases
  const auto r = run_csrmm_system(a, b, cfg);
  EXPECT_EQ(r.plans.front().num_phases, 4u);
  EXPECT_TRUE(sparse::allclose(r.y, sparse::ref_csrmm(a, b), 1e-9, 1e-9));
}

TEST(SystemCsrmm, NonPow2LeadingDimensionAndSingleColumn) {
  Rng rng(2203);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 40, 48, 6);
  const auto b = sparse::random_dense_matrix(rng, a.cols(), 3, /*ld=*/5);
  SysCsrmmConfig cfg;
  cfg.system.num_clusters = 2;  // auto col_block = 2 -> 2 phases
  const auto r = run_csrmm_system(a, b, cfg);
  EXPECT_TRUE(sparse::allclose(r.y, sparse::ref_csrmm(a, b), 1e-9, 1e-9));

  const auto b1 = sparse::random_dense_matrix(rng, a.cols(), 1);
  const auto r1 = run_csrmm_system(a, b1, cfg);
  EXPECT_TRUE(sparse::allclose(r1.y, sparse::ref_csrmm(a, b1), 1e-9, 1e-9));
}

TEST(SystemCsrmm, FastForwardIdentity) {
  Rng rng(2204);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 72, 64, 8);
  const auto b = sparse::random_dense_matrix(rng, a.cols(), 8);
  SysCsrmmConfig cfg;
  cfg.system.num_clusters = 2;
  cfg.system.fast_forward = true;
  const auto ff = run_csrmm_system(a, b, cfg);
  cfg.system.fast_forward = false;
  const auto ref = run_csrmm_system(a, b, cfg);
  EXPECT_EQ(ff.system.cycles, ref.system.cycles);
  EXPECT_TRUE(sparse::allclose(ff.y, ref.y, 0.0, 0.0));
}

// --- Driver integration: the clusters axis ---------------------------------

TEST(DriverClusters, ExpansionCrossesClustersAndPinsSpvv) {
  driver::ScenarioMatrix m;
  m.kernels = {driver::Kernel::kSpvv, driver::Kernel::kCsrmv};
  m.variants = {Variant::kIssr};
  m.widths = {IndexWidth::kU16};
  m.cores = {8};
  m.clusters = {1, 4};
  const auto scenarios = m.expand();
  // SpVV: cores>1 skipped entirely. CsrMV: one scenario per cluster count.
  ASSERT_EQ(scenarios.size(), 2u);
  EXPECT_EQ(scenarios[0].clusters, 1u);
  EXPECT_EQ(scenarios[1].clusters, 4u);
  // The workload seed ignores the clusters axis (same operands for the
  // whole comparison group).
  EXPECT_EQ(scenarios[0].seed, scenarios[1].seed);
  // The name carries the axis only when it is not the default.
  EXPECT_EQ(scenarios[0].name().find("/x"), std::string::npos);
  EXPECT_NE(scenarios[1].name().find("/x4"), std::string::npos);
}

TEST(DriverClusters, RunScenarioValidatesMultiClusterAgainstReference) {
  driver::Scenario s;
  s.kernel = driver::Kernel::kCsrmv;
  s.variant = Variant::kIssr;
  s.width = IndexWidth::kU16;
  s.rows = 96;
  s.cols = 96;
  s.density = 0.1;
  s.cores = 4;
  s.clusters = 2;
  s.seed = driver::derive_seed(7, s.kernel, s.family, s.density, s.rows,
                               s.cols);
  const auto r = driver::run_scenario(s);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.scenario.clusters, 2u);
  // core_cycles spans every worker in every cluster, and the stall
  // buckets decompose it exactly.
  EXPECT_EQ(r.core_cycles, r.cycles * 8ull);
  EXPECT_EQ(r.stalls.total(), r.core_cycles);
}

TEST(DriverClusters, MultiClusterSweepBytewiseIdenticalAcrossJobs) {
  driver::ScenarioMatrix m;
  m.variants = {Variant::kBase, Variant::kIssr};
  m.widths = {IndexWidth::kU16};
  m.cores = {2};
  m.clusters = {1, 2, 4};
  m.rows = 64;
  m.cols = 64;
  const auto scenarios = m.expand();
  ASSERT_EQ(scenarios.size(), 6u);
  const auto serial = driver::run_scenarios(scenarios, 1);
  const auto parallel = driver::run_scenarios(scenarios, 3);
  for (const auto& r : serial) EXPECT_TRUE(r.ok) << r.scenario.name();
  EXPECT_EQ(driver::results_to_json(serial), driver::results_to_json(parallel));
  EXPECT_EQ(driver::results_to_csv(serial), driver::results_to_csv(parallel));
}

TEST(DriverClusters, EstimatedCostGrowsWithClusterCount) {
  driver::Scenario s;
  s.kernel = driver::Kernel::kCsrmv;
  s.rows = 192;
  s.cols = 256;
  s.cores = 8;
  s.clusters = 1;
  const double c1 = driver::estimated_cost(s);
  s.clusters = 4;
  const double c4 = driver::estimated_cost(s);
  s.clusters = 8;
  const double c8 = driver::estimated_cost(s);
  EXPECT_GT(c4, c1);
  EXPECT_GT(c8, c4);
}

TEST(DriverClusters, DryRunCostColumnMatchesSchedulerEstimate) {
  // Regression: the --dry-run listing must print, for every scenario —
  // multi-cluster ones included — exactly the cost the sweep scheduler
  // dispatches by, and its total must cover cluster-ness multiplicity
  // at any rep count (it once did not when reps > 1).
  driver::ScenarioMatrix m;
  m.variants = {Variant::kIssr};
  m.widths = {IndexWidth::kU16};
  m.cores = {8};
  m.clusters = {1, 4, 8};
  const auto scenarios = m.expand();
  ASSERT_EQ(scenarios.size(), 3u);
  const unsigned reps = 3;
  const std::string text = driver::list_scenarios_text(scenarios, reps);

  double total = 0.0;
  for (const auto& s : scenarios) {
    const double cost = driver::estimated_cost(s);
    total += cost;
    char want[256];
    std::snprintf(want, sizeof want,
                  "%s  rows=%u cols=%u target_nnz/row=%u "
                  "seed=0x%016llx cost=%.0f\n",
                  s.name().c_str(), s.rows, s.cols, s.row_nnz(),
                  static_cast<unsigned long long>(s.seed), cost);
    EXPECT_NE(text.find(want), std::string::npos)
        << s.name() << " must list the scheduler's cost:\n" << want;
  }
  char want[160];
  std::snprintf(want, sizeof want, "total estimated cost %.0f", total * reps);
  EXPECT_NE(text.find(want), std::string::npos)
      << "total must be sum(cost) x reps: " << want;
}

}  // namespace
}  // namespace issr::system
