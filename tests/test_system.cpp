// Multi-cluster system tests: the inter-cluster barrier's release
// ordering and latency, the cost-balanced row partition, golden-reference
// equality of the cross-cluster CsrMV/CsrMM kernels for every generator
// family at 1/2/4/8 clusters, fast-forward on/off identity, shared-memory
// bandwidth contention, and the driver integration (clusters axis: result
// files bytewise identical across --jobs, dry-run cost column matching
// the scheduler's estimate).
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "driver/report.hpp"
#include "driver/runner.hpp"
#include "driver/scenario.hpp"
#include "driver/sweep.hpp"
#include "sparse/generate.hpp"
#include "sparse/reference.hpp"
#include "system/barrier.hpp"
#include "system/csrmm_sys.hpp"
#include "system/csrmv_sys.hpp"

namespace issr::system {
namespace {

using kernels::Variant;
using sparse::IndexWidth;

// --- Inter-cluster barrier -------------------------------------------------

TEST(SysBarrier, ReleasesOnlyAfterAllArriveAndLatencyElapses) {
  SysBarrier b(3, 10);
  b.arrive(0, 100);
  b.arrive(1, 104);
  EXPECT_FALSE(b.released(0, 105));  // cluster 2 still missing
  EXPECT_FALSE(b.released(1, 1000));
  b.arrive(2, 108);  // completes the generation; release at 118
  EXPECT_EQ(b.generation(), 1u);
  EXPECT_FALSE(b.released(0, 117));
  EXPECT_TRUE(b.released(0, 118));
  EXPECT_TRUE(b.released(1, 118));
  EXPECT_TRUE(b.released(2, 200));
}

TEST(SysBarrier, ZeroLatencyReleasesAtLastArrival) {
  SysBarrier b(2, 0);
  b.arrive(0, 5);
  b.arrive(1, 9);
  EXPECT_TRUE(b.released(0, 9));
  EXPECT_TRUE(b.released(1, 9));
}

TEST(SysBarrier, ReusableAcrossGenerations) {
  SysBarrier b(2, 4);
  cycle_t t = 0;
  for (int gen = 1; gen <= 5; ++gen) {
    b.arrive(0, t);
    b.arrive(1, t + 1);
    EXPECT_FALSE(b.released(0, t + 4));
    EXPECT_TRUE(b.released(0, t + 5));
    EXPECT_TRUE(b.released(1, t + 5));
    EXPECT_EQ(b.generation(), static_cast<std::uint64_t>(gen));
    t += 10;
  }
}

TEST(SysBarrier, ArriveIsIdempotentWhileWaiting) {
  SysBarrier b(2, 0);
  b.arrive(0, 1);
  b.arrive(0, 2);  // re-arrival of the same waiter must not release
  EXPECT_EQ(b.generation(), 0u);
  b.arrive(1, 3);
  EXPECT_EQ(b.generation(), 1u);
}

// --- Cost-balanced row partition -------------------------------------------

TEST(Partition, CoversAllRowsMonotonically) {
  Rng rng(2000);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 500, 256, 20);
  for (const unsigned n : {1u, 2u, 4u, 8u, 13u}) {
    const auto cut = partition_rows_balanced(a, n);
    ASSERT_EQ(cut.size(), n + 1);
    EXPECT_EQ(cut.front(), 0u);
    EXPECT_EQ(cut.back(), a.rows());
    for (unsigned c = 0; c < n; ++c) EXPECT_LE(cut[c], cut[c + 1]);
  }
}

TEST(Partition, BalancesNnzAcrossShards) {
  // Skewed row lengths: the nnz-aware partition must still produce
  // shards within ~2x of the mean cost (a row-count split would not).
  Rng rng(2001);
  const auto a = sparse::powerlaw_matrix(rng, 512, 512, 24.0, 1.2);
  const unsigned n = 4;
  const auto cut = partition_rows_balanced(a, n);
  const double mean = static_cast<double>(a.nnz()) / n;
  for (unsigned c = 0; c < n; ++c) {
    const std::uint64_t shard_nnz = a.ptr()[cut[c + 1]] - a.ptr()[cut[c]];
    EXPECT_LT(static_cast<double>(shard_nnz), 2.0 * mean + 64.0) << "shard " << c;
  }
}

TEST(Partition, MoreClustersThanRowsLeavesTrailingShardsEmpty) {
  Rng rng(2002);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 3, 64, 8);
  const auto cut = partition_rows_balanced(a, 8);
  EXPECT_EQ(cut.front(), 0u);
  EXPECT_EQ(cut.back(), 3u);
}

// --- Cross-cluster CsrMV ---------------------------------------------------

struct SysCase {
  sparse::MatrixFamily family;
  unsigned clusters;
};

class SystemCsrmv : public ::testing::TestWithParam<SysCase> {};

TEST_P(SystemCsrmv, MatchesReferenceAllFamiliesAllClusterCounts) {
  const auto [family, clusters] = GetParam();
  Rng rng(2100);
  const auto a = sparse::generate_matrix(rng, family, 256, 192, 14);
  const auto x = sparse::random_dense_vector(rng, a.cols());
  SysCsrmvConfig cfg;
  cfg.variant = Variant::kIssr;
  cfg.width = IndexWidth::kU16;
  cfg.system.num_clusters = clusters;
  const auto r = run_csrmv_system(a, x, cfg);
  ASSERT_FALSE(r.system.aborted);
  EXPECT_EQ(r.system.clusters.size(), clusters);
  EXPECT_TRUE(sparse::allclose(r.y, sparse::ref_csrmv(a, x), 1e-9, 1e-9));
  // Exactly one completion barrier generation.
  EXPECT_GT(r.system.cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesByClusters, SystemCsrmv,
    ::testing::Values(SysCase{sparse::MatrixFamily::kUniform, 1},
                      SysCase{sparse::MatrixFamily::kUniform, 2},
                      SysCase{sparse::MatrixFamily::kUniform, 4},
                      SysCase{sparse::MatrixFamily::kUniform, 8},
                      SysCase{sparse::MatrixFamily::kBanded, 1},
                      SysCase{sparse::MatrixFamily::kBanded, 2},
                      SysCase{sparse::MatrixFamily::kBanded, 4},
                      SysCase{sparse::MatrixFamily::kBanded, 8},
                      SysCase{sparse::MatrixFamily::kPowerLaw, 1},
                      SysCase{sparse::MatrixFamily::kPowerLaw, 2},
                      SysCase{sparse::MatrixFamily::kPowerLaw, 4},
                      SysCase{sparse::MatrixFamily::kPowerLaw, 8},
                      SysCase{sparse::MatrixFamily::kTorus, 1},
                      SysCase{sparse::MatrixFamily::kTorus, 2},
                      SysCase{sparse::MatrixFamily::kTorus, 4},
                      SysCase{sparse::MatrixFamily::kTorus, 8}),
    [](const auto& info) {
      std::string name = sparse::to_string(info.param.family);
      name += "_x" + std::to_string(info.param.clusters);
      return name;
    });

TEST(SystemCsrmv, AllVariantsAndWidthsMatchReference) {
  Rng rng(2101);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 128, 160, 12);
  const auto x = sparse::random_dense_vector(rng, a.cols());
  const auto want = sparse::ref_csrmv(a, x);
  for (const Variant v : {Variant::kBase, Variant::kSsr, Variant::kIssr}) {
    for (const IndexWidth w : {IndexWidth::kU16, IndexWidth::kU32}) {
      SysCsrmvConfig cfg;
      cfg.variant = v;
      cfg.width = w;
      cfg.system.num_clusters = 2;
      const auto r = run_csrmv_system(a, x, cfg);
      EXPECT_TRUE(sparse::allclose(r.y, want, 1e-9, 1e-9))
          << kernels::to_string(v);
    }
  }
}

TEST(SystemCsrmv, OneClusterMatchesNClusterResults) {
  // N-cluster vs 1-cluster equality: the simulated y vectors must agree
  // exactly (identical FP operation order within each row).
  Rng rng(2102);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 200, 128, 16);
  const auto x = sparse::random_dense_vector(rng, a.cols());
  SysCsrmvConfig cfg;
  cfg.system.num_clusters = 1;
  const auto r1 = run_csrmv_system(a, x, cfg);
  for (const unsigned n : {2u, 4u, 8u}) {
    cfg.system.num_clusters = n;
    const auto rn = run_csrmv_system(a, x, cfg);
    ASSERT_EQ(rn.y.size(), r1.y.size());
    for (std::size_t i = 0; i < r1.y.size(); ++i) {
      EXPECT_EQ(rn.y[i], r1.y[i]) << "row " << i << " at " << n << " clusters";
    }
  }
}

TEST(SystemCsrmv, FewerRowsThanClustersStillCorrect) {
  Rng rng(2103);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 3, 64, 8);
  const auto x = sparse::random_dense_vector(rng, a.cols());
  SysCsrmvConfig cfg;
  cfg.system.num_clusters = 8;
  const auto r = run_csrmv_system(a, x, cfg);
  EXPECT_TRUE(sparse::allclose(r.y, sparse::ref_csrmv(a, x), 1e-9, 1e-9));
}

TEST(SystemCsrmv, FastForwardIdentity) {
  Rng rng(2104);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 192, 160, 10);
  const auto x = sparse::random_dense_vector(rng, a.cols());
  SysCsrmvConfig cfg;
  cfg.system.num_clusters = 4;
  cfg.system.fast_forward = true;
  const auto ff = run_csrmv_system(a, x, cfg);
  cfg.system.fast_forward = false;
  const auto ref = run_csrmv_system(a, x, cfg);
  EXPECT_EQ(ff.system.cycles, ref.system.cycles);
  EXPECT_EQ(ref.system.ff_skipped, 0u);
  for (std::size_t i = 0; i < ref.y.size(); ++i) EXPECT_EQ(ff.y[i], ref.y[i]);
  for (unsigned c = 0; c < 4; ++c) {
    EXPECT_EQ(ff.system.clusters[c].total_stalls(),
              ref.system.clusters[c].total_stalls());
  }
}

TEST(SystemCsrmv, CyclesScaleDownWithClusterCount) {
  Rng rng(2105);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 512, 256, 48);
  const auto x = sparse::random_dense_vector(rng, a.cols());
  cycle_t prev = 0;
  for (const unsigned n : {1u, 2u, 4u}) {
    SysCsrmvConfig cfg;
    cfg.system.num_clusters = n;
    const auto r = run_csrmv_system(a, x, cfg);
    EXPECT_TRUE(sparse::allclose(r.y, sparse::ref_csrmv(a, x), 1e-9, 1e-9));
    if (prev != 0) {
      EXPECT_LT(r.system.cycles, prev) << n << " clusters";
    }
    prev = r.system.cycles;
  }
}

TEST(SystemCsrmv, SharedBandwidthThrottlesEightClusters) {
  // With the aggregate budget pinned to one beat per direction per
  // cycle, eight clusters' DMA engines contend hard; unlimited bandwidth
  // must be strictly faster. (Both still validate.)
  Rng rng(2106);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 512, 192, 24);
  const auto x = sparse::random_dense_vector(rng, a.cols());
  SysCsrmvConfig cfg;
  cfg.system.num_clusters = 8;
  cfg.system.mem_beats_per_cycle = 1;
  const auto throttled = run_csrmv_system(a, x, cfg);
  cfg.system.mem_beats_per_cycle = 0;  // unlimited
  const auto open = run_csrmv_system(a, x, cfg);
  EXPECT_TRUE(sparse::allclose(throttled.y, sparse::ref_csrmv(a, x), 1e-9, 1e-9));
  EXPECT_TRUE(sparse::allclose(open.y, sparse::ref_csrmv(a, x), 1e-9, 1e-9));
  EXPECT_GT(throttled.system.cycles, open.system.cycles);
}

TEST(SystemCsrmv, StallBucketsDecomposeSystemCoreCycles) {
  Rng rng(2107);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 128, 128, 12);
  const auto x = sparse::random_dense_vector(rng, a.cols());
  SysCsrmvConfig cfg;
  cfg.system.num_clusters = 2;
  const auto r = run_csrmv_system(a, x, cfg);
  EXPECT_EQ(r.system.total_stalls().total(), r.system.core_cycles());
  const unsigned workers = cfg.system.cluster.num_workers;
  EXPECT_EQ(r.system.core_cycles(),
            r.system.cycles * 2ull * workers);
}

TEST(SystemCsrmv, BarrierLatencyExtendsTheRun) {
  Rng rng(2108);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 96, 96, 8);
  const auto x = sparse::random_dense_vector(rng, a.cols());
  SysCsrmvConfig fast;
  fast.system.num_clusters = 2;
  fast.system.barrier_latency = 0;
  SysCsrmvConfig slow = fast;
  slow.system.barrier_latency = 500;
  const auto rf = run_csrmv_system(a, x, fast);
  const auto rs = run_csrmv_system(a, x, slow);
  // The zero-latency release is still observed one poll cycle after the
  // last arrival, so the extra latency shows up as latency - 1 cycles.
  EXPECT_GE(rs.system.cycles, rf.system.cycles + 499);
}

// --- Cross-cluster CsrMM ---------------------------------------------------

class SystemCsrmm : public ::testing::TestWithParam<SysCase> {};

TEST_P(SystemCsrmm, MatchesReferenceAllFamiliesAllClusterCounts) {
  const auto [family, clusters] = GetParam();
  Rng rng(2200);
  const auto a = sparse::generate_matrix(rng, family, 96, 128, 10);
  const auto b = sparse::random_dense_matrix(rng, a.cols(), 10);
  SysCsrmmConfig cfg;
  cfg.system.num_clusters = clusters;
  cfg.col_block = 4;  // 10 columns -> 3 phases, last one partial
  const auto r = run_csrmm_system(a, b, cfg);
  ASSERT_FALSE(r.system.aborted);
  EXPECT_TRUE(sparse::allclose(r.y, sparse::ref_csrmm(a, b), 1e-9, 1e-9));
  EXPECT_EQ(r.plans.front().num_phases, 3u);
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesByClusters, SystemCsrmm,
    ::testing::Values(SysCase{sparse::MatrixFamily::kUniform, 1},
                      SysCase{sparse::MatrixFamily::kUniform, 2},
                      SysCase{sparse::MatrixFamily::kUniform, 4},
                      SysCase{sparse::MatrixFamily::kUniform, 8},
                      SysCase{sparse::MatrixFamily::kBanded, 2},
                      SysCase{sparse::MatrixFamily::kPowerLaw, 4},
                      SysCase{sparse::MatrixFamily::kTorus, 2}),
    [](const auto& info) {
      std::string name = sparse::to_string(info.param.family);
      name += "_x" + std::to_string(info.param.clusters);
      return name;
    });

TEST(SystemCsrmm, AllVariantsMatchReference) {
  Rng rng(2201);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 64, 96, 9);
  const auto b = sparse::random_dense_matrix(rng, a.cols(), 6);
  const auto want = sparse::ref_csrmm(a, b);
  for (const Variant v : {Variant::kBase, Variant::kSsr, Variant::kIssr}) {
    for (const IndexWidth w : {IndexWidth::kU16, IndexWidth::kU32}) {
      SysCsrmmConfig cfg;
      cfg.variant = v;
      cfg.width = w;
      cfg.system.num_clusters = 2;
      const auto r = run_csrmm_system(a, b, cfg);
      EXPECT_TRUE(sparse::allclose(r.y, want, 1e-9, 1e-9))
          << kernels::to_string(v);
    }
  }
}

TEST(SystemCsrmm, PhaseBarrierGenerationsMatchPlan) {
  // One inter-cluster barrier generation per column phase: the release
  // count is the direct observable of the phase synchronization.
  Rng rng(2202);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 80, 64, 8);
  const auto b = sparse::random_dense_matrix(rng, a.cols(), 16);
  SysCsrmmConfig cfg;
  cfg.system.num_clusters = 4;
  cfg.col_block = 4;  // 4 phases
  const auto r = run_csrmm_system(a, b, cfg);
  EXPECT_EQ(r.plans.front().num_phases, 4u);
  EXPECT_TRUE(sparse::allclose(r.y, sparse::ref_csrmm(a, b), 1e-9, 1e-9));
}

TEST(SystemCsrmm, NonPow2LeadingDimensionAndSingleColumn) {
  Rng rng(2203);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 40, 48, 6);
  const auto b = sparse::random_dense_matrix(rng, a.cols(), 3, /*ld=*/5);
  SysCsrmmConfig cfg;
  cfg.system.num_clusters = 2;  // auto col_block = 2 -> 2 phases
  const auto r = run_csrmm_system(a, b, cfg);
  EXPECT_TRUE(sparse::allclose(r.y, sparse::ref_csrmm(a, b), 1e-9, 1e-9));

  const auto b1 = sparse::random_dense_matrix(rng, a.cols(), 1);
  const auto r1 = run_csrmm_system(a, b1, cfg);
  EXPECT_TRUE(sparse::allclose(r1.y, sparse::ref_csrmm(a, b1), 1e-9, 1e-9));
}

TEST(SystemCsrmm, FastForwardIdentity) {
  Rng rng(2204);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 72, 64, 8);
  const auto b = sparse::random_dense_matrix(rng, a.cols(), 8);
  SysCsrmmConfig cfg;
  cfg.system.num_clusters = 2;
  cfg.system.fast_forward = true;
  const auto ff = run_csrmm_system(a, b, cfg);
  cfg.system.fast_forward = false;
  const auto ref = run_csrmm_system(a, b, cfg);
  EXPECT_EQ(ff.system.cycles, ref.system.cycles);
  EXPECT_TRUE(sparse::allclose(ff.y, ref.y, 0.0, 0.0));
}

// --- Driver integration: the clusters axis ---------------------------------

TEST(DriverClusters, ExpansionCrossesClustersAndPinsSpvv) {
  driver::ScenarioMatrix m;
  m.kernels = {driver::Kernel::kSpvv, driver::Kernel::kCsrmv};
  m.variants = {Variant::kIssr};
  m.widths = {IndexWidth::kU16};
  m.cores = {8};
  m.clusters = {1, 4};
  const auto scenarios = m.expand();
  // SpVV: cores>1 skipped entirely. CsrMV: one scenario per cluster count.
  ASSERT_EQ(scenarios.size(), 2u);
  EXPECT_EQ(scenarios[0].clusters, 1u);
  EXPECT_EQ(scenarios[1].clusters, 4u);
  // The workload seed ignores the clusters axis (same operands for the
  // whole comparison group).
  EXPECT_EQ(scenarios[0].seed, scenarios[1].seed);
  // The name carries the axis only when it is not the default.
  EXPECT_EQ(scenarios[0].name().find("/x"), std::string::npos);
  EXPECT_NE(scenarios[1].name().find("/x4"), std::string::npos);
}

TEST(DriverClusters, RunScenarioValidatesMultiClusterAgainstReference) {
  driver::Scenario s;
  s.kernel = driver::Kernel::kCsrmv;
  s.variant = Variant::kIssr;
  s.width = IndexWidth::kU16;
  s.rows = 96;
  s.cols = 96;
  s.density = 0.1;
  s.cores = 4;
  s.clusters = 2;
  s.seed = driver::derive_seed(7, s.kernel, s.family, s.density, s.rows,
                               s.cols);
  const auto r = driver::run_scenario(s);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.scenario.clusters, 2u);
  // core_cycles spans every worker in every cluster, and the stall
  // buckets decompose it exactly.
  EXPECT_EQ(r.core_cycles, r.cycles * 8ull);
  EXPECT_EQ(r.stalls.total(), r.core_cycles);
}

TEST(DriverClusters, MultiClusterSweepBytewiseIdenticalAcrossJobs) {
  driver::ScenarioMatrix m;
  m.variants = {Variant::kBase, Variant::kIssr};
  m.widths = {IndexWidth::kU16};
  m.cores = {2};
  m.clusters = {1, 2, 4};
  m.rows = 64;
  m.cols = 64;
  const auto scenarios = m.expand();
  ASSERT_EQ(scenarios.size(), 6u);
  const auto serial = driver::run_scenarios(scenarios, 1);
  const auto parallel = driver::run_scenarios(scenarios, 3);
  for (const auto& r : serial) EXPECT_TRUE(r.ok) << r.scenario.name();
  EXPECT_EQ(driver::results_to_json(serial), driver::results_to_json(parallel));
  EXPECT_EQ(driver::results_to_csv(serial), driver::results_to_csv(parallel));
}

TEST(DriverClusters, EstimatedCostGrowsWithClusterCount) {
  driver::Scenario s;
  s.kernel = driver::Kernel::kCsrmv;
  s.rows = 192;
  s.cols = 256;
  s.cores = 8;
  s.clusters = 1;
  const double c1 = driver::estimated_cost(s);
  s.clusters = 4;
  const double c4 = driver::estimated_cost(s);
  s.clusters = 8;
  const double c8 = driver::estimated_cost(s);
  EXPECT_GT(c4, c1);
  EXPECT_GT(c8, c4);
}

TEST(DriverClusters, DryRunCostColumnMatchesSchedulerEstimate) {
  // Regression: the --dry-run listing must print, for every scenario —
  // multi-cluster ones included — exactly the cost the sweep scheduler
  // dispatches by, and its total must cover cluster-ness multiplicity
  // at any rep count (it once did not when reps > 1).
  driver::ScenarioMatrix m;
  m.variants = {Variant::kIssr};
  m.widths = {IndexWidth::kU16};
  m.cores = {8};
  m.clusters = {1, 4, 8};
  const auto scenarios = m.expand();
  ASSERT_EQ(scenarios.size(), 3u);
  const unsigned reps = 3;
  const std::string text = driver::list_scenarios_text(scenarios, reps);

  double total = 0.0;
  for (const auto& s : scenarios) {
    const double cost = driver::estimated_cost(s);
    total += cost;
    char want[256];
    std::snprintf(want, sizeof want,
                  "%s  rows=%u cols=%u target_nnz/row=%u "
                  "seed=0x%016llx cost=%.0f\n",
                  s.name().c_str(), s.rows, s.cols, s.row_nnz(),
                  static_cast<unsigned long long>(s.seed), cost);
    EXPECT_NE(text.find(want), std::string::npos)
        << s.name() << " must list the scheduler's cost:\n" << want;
  }
  char want[160];
  std::snprintf(want, sizeof want, "total estimated cost %.0f", total * reps);
  EXPECT_NE(text.find(want), std::string::npos)
      << "total must be sum(cost) x reps: " << want;
}

}  // namespace
}  // namespace issr::system
