#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace issr {
namespace {

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256 a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a();
    EXPECT_EQ(va, b());
    (void)c();
  }
  Xoshiro256 a2(42), c2(43);
  EXPECT_NE(a2(), c2());
}

TEST(Xoshiro, JumpDecorrelatesStreams) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(2);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(3, 10));
  EXPECT_EQ(*seen.begin(), 3u);
  EXPECT_EQ(*seen.rbegin(), 10u);
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5u);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(4);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalScalesMeanAndStddev) {
  Rng rng(5);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.normal(10.0, 3.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 3.0, 0.1);
}

class DistinctSorted
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {
};

TEST_P(DistinctSorted, ProducesSortedUniqueInRange) {
  const auto [count, universe] = GetParam();
  Rng rng(6 + count);
  const auto v = rng.distinct_sorted(count, universe);
  ASSERT_EQ(v.size(), count);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_LT(v[i], universe);
    if (i > 0) {
      EXPECT_LT(v[i - 1], v[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, DistinctSorted,
    ::testing::Values(std::pair{0u, 10u}, std::pair{1u, 1u},
                      std::pair{10u, 10u}, std::pair{5u, 100u},
                      std::pair{99u, 100u}, std::pair{500u, 4096u}));

TEST(Rng, ShufflePermutes) {
  Rng rng(7);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto w = v;
  rng.shuffle(w);
  EXPECT_NE(v, w);  // astronomically unlikely to be identity
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

}  // namespace
}  // namespace issr
