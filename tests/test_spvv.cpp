// End-to-end validation of the SpVV kernels on the single-CC simulator:
// numerical correctness against the golden reference for every variant and
// index width, plus the paper's architectural throughput ceilings
// (Fig. 4a: BASE -> 1/9, SSR -> 1/7, ISSR-16 -> 0.80, ISSR-32 -> 0.67).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/sim.hpp"
#include "kernels/spvv.hpp"
#include "sparse/generate.hpp"
#include "sparse/reference.hpp"

namespace issr {
namespace {

using kernels::Variant;
using sparse::IndexWidth;

struct SpvvRun {
  double result = 0.0;
  core::CcSimResult sim;
};

SpvvRun run_spvv(Variant variant, IndexWidth width, std::uint32_t dim,
                 std::uint32_t nnz, std::uint64_t seed,
                 unsigned misalign = 0) {
  Rng rng(seed);
  const auto a = sparse::random_sparse_vector(rng, dim, nnz);
  const auto b = sparse::random_dense_vector(rng, dim);

  core::CcSim sim;
  kernels::SpvvArgs args;
  args.a_vals = sim.stage(a.vals());
  args.a_idcs = sim.stage_indices(a.idcs(), width, misalign);
  args.nnz = nnz;
  args.b = sim.stage(b);
  args.result = sim.alloc(8);
  args.width = width;

  sim.set_program(kernels::build_spvv(variant, args));
  SpvvRun out;
  out.sim = sim.run();
  out.result = sim.read_f64(args.result);

  const double expected = sparse::ref_spvv(a, b);
  EXPECT_NEAR(out.result, expected, 1e-9 * (1.0 + std::abs(expected)))
      << "variant=" << kernels::to_string(variant)
      << " width=" << (width == IndexWidth::kU16 ? 16 : 32)
      << " nnz=" << nnz;
  return out;
}

struct Case {
  Variant variant;
  IndexWidth width;
};

class SpvvCorrectness : public ::testing::TestWithParam<Case> {};

TEST_P(SpvvCorrectness, MatchesReferenceAcrossSizes) {
  const auto [variant, width] = GetParam();
  for (const std::uint32_t nnz : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 16u, 33u,
                                  100u, 256u, 1000u}) {
    const std::uint32_t dim = std::max(2 * nnz, 64u);
    run_spvv(variant, width, dim, nnz, 1234 + nnz);
  }
}

TEST_P(SpvvCorrectness, HandlesMisalignedIndexArrays) {
  const auto [variant, width] = GetParam();
  const unsigned iw = sparse::index_bytes(width);
  for (unsigned mis = iw; mis < 8; mis += iw) {
    run_spvv(variant, width, 512, 97, 77, mis);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, SpvvCorrectness,
    ::testing::Values(Case{Variant::kBase, IndexWidth::kU16},
                      Case{Variant::kBase, IndexWidth::kU32},
                      Case{Variant::kSsr, IndexWidth::kU16},
                      Case{Variant::kSsr, IndexWidth::kU32},
                      Case{Variant::kIssr, IndexWidth::kU16},
                      Case{Variant::kIssr, IndexWidth::kU32}),
    [](const auto& info) {
      const auto& c = info.param;
      std::string name = kernels::to_string(c.variant);
      name += c.width == IndexWidth::kU16 ? "_u16" : "_u32";
      return name;
    });

TEST(SpvvThroughput, BaseApproachesOneNinth) {
  const auto run = run_spvv(Variant::kBase, IndexWidth::kU32, 8192, 4096, 1);
  EXPECT_NEAR(run.sim.fpu_util(), 1.0 / 9.0, 0.01);
}

TEST(SpvvThroughput, SsrApproachesOneSeventh) {
  const auto run = run_spvv(Variant::kSsr, IndexWidth::kU32, 8192, 4096, 2);
  EXPECT_NEAR(run.sim.fpu_util(), 1.0 / 7.0, 0.012);
}

TEST(SpvvThroughput, Issr16ApproachesFourFifths) {
  const auto run = run_spvv(Variant::kIssr, IndexWidth::kU16, 8192, 4096, 3);
  EXPECT_GT(run.sim.fpu_util(), 0.74);
  EXPECT_LE(run.sim.fpu_util(), 0.801);
}

TEST(SpvvThroughput, Issr32ApproachesTwoThirds) {
  const auto run = run_spvv(Variant::kIssr, IndexWidth::kU32, 8192, 4096, 4);
  EXPECT_GT(run.sim.fpu_util(), 0.62);
  EXPECT_LE(run.sim.fpu_util(), 0.668);
}

TEST(SpvvThroughput, UtilizationOrderingMatchesPaper) {
  // At high nnz: ISSR16 > ISSR32 > SSR > BASE (Fig. 4a).
  const double base =
      run_spvv(Variant::kBase, IndexWidth::kU32, 8192, 2048, 5).sim.fpu_util();
  const double ssr =
      run_spvv(Variant::kSsr, IndexWidth::kU32, 8192, 2048, 5).sim.fpu_util();
  const double issr32 =
      run_spvv(Variant::kIssr, IndexWidth::kU32, 8192, 2048, 5).sim.fpu_util();
  const double issr16 =
      run_spvv(Variant::kIssr, IndexWidth::kU16, 8192, 2048, 5).sim.fpu_util();
  EXPECT_LT(base, ssr);
  EXPECT_LT(ssr, issr32);
  EXPECT_LT(issr32, issr16);
}

TEST(SpvvThroughput, TinyVectorsFavorScalarKernels) {
  // Paper: for nnz < 5 the ISSR reduction-free utilization drops below the
  // scalar kernels' (setup dominates).
  const auto issr = run_spvv(Variant::kIssr, IndexWidth::kU16, 64, 2, 6);
  const auto base = run_spvv(Variant::kBase, IndexWidth::kU16, 64, 2, 6);
  EXPECT_LT(issr.sim.fpu_util_fmadd_only(), base.sim.fpu_util_fmadd_only());
}

}  // namespace
}  // namespace issr
