// Sparse-stencil convolution kernel tests (§III-C application).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/sim.hpp"
#include "kernels/stencil.hpp"
#include "sparse/generate.hpp"

namespace issr::kernels {
namespace {

using sparse::IndexWidth;

SparseStencil random_stencil(Rng& rng, std::uint32_t taps,
                             std::uint32_t max_reach) {
  SparseStencil st;
  st.offsets = rng.distinct_sorted(taps, max_reach);
  st.weights = rng.normal_vector(taps);
  return st;
}

void run_and_check(const sparse::DenseVector& in, const SparseStencil& st,
                   IndexWidth width) {
  ASSERT_TRUE(st.valid());
  core::CcSim sim;
  StencilArgs args;
  args.in = sim.stage(in);
  args.n = static_cast<std::uint32_t>(in.size());
  args.offsets = sim.stage_indices(st.offsets, width);
  args.weights = sim.stage(st.weights);
  args.taps = st.taps();
  args.reach = st.reach();
  args.out = sim.alloc(8ull * (in.size() - st.reach() + 1));
  args.width = width;
  sim.set_program(build_sparse_stencil(args));
  sim.run();

  const auto expect = ref_sparse_stencil(in, st);
  const auto got =
      sparse::DenseVector(sim.read_f64s(args.out, expect.size()));
  EXPECT_TRUE(sparse::allclose(got, expect, 1e-9, 1e-9))
      << "taps=" << st.taps() << " reach=" << st.reach()
      << " maxdiff=" << sparse::max_abs_diff(got, expect);
}

TEST(SparseStencil, ValidityRules) {
  SparseStencil st;
  EXPECT_FALSE(st.valid());  // empty
  st.offsets = {0, 2, 5};
  st.weights = {1, 2, 3};
  EXPECT_TRUE(st.valid());
  EXPECT_EQ(st.reach(), 6u);
  st.offsets = {0, 2, 2};  // not strictly increasing
  EXPECT_FALSE(st.valid());
  st.offsets = {0, 2};  // size mismatch
  EXPECT_FALSE(st.valid());
}

class StencilWidths : public ::testing::TestWithParam<IndexWidth> {};

TEST_P(StencilWidths, TapCountsAroundTheUnrollBoundary) {
  Rng rng(70);
  const auto in = sparse::random_dense_vector(rng, 128);
  for (std::uint32_t taps = 1; taps <= 9; ++taps) {
    run_and_check(in, random_stencil(rng, taps, 24), GetParam());
  }
}

TEST_P(StencilWidths, DenseContiguousStencilMatchesConvolution) {
  Rng rng(71);
  const auto in = sparse::random_dense_vector(rng, 200);
  SparseStencil st;
  st.offsets = {0, 1, 2, 3, 4};
  st.weights = {0.1, -0.2, 0.4, -0.2, 0.1};
  run_and_check(in, st, GetParam());
}

TEST_P(StencilWidths, WideSparseStencil) {
  Rng rng(72);
  const auto in = sparse::random_dense_vector(rng, 600);
  run_and_check(in, random_stencil(rng, 24, 300), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Widths, StencilWidths,
                         ::testing::Values(IndexWidth::kU16,
                                           IndexWidth::kU32),
                         [](const auto& info) {
                           return info.param == IndexWidth::kU16 ? "u16"
                                                                 : "u32";
                         });

TEST(SparseStencil, TwoDStencilViaRowStrideOffsets) {
  // A 2-D cross stencil on a 16-column image, flattened to 1-D offsets
  // (the image's power-of-two row stride makes offsets exact).
  Rng rng(73);
  const std::uint32_t w = 16, h = 12;
  const auto img = sparse::random_dense_vector(rng, w * h);
  SparseStencil st;
  // Cross centered at (+1,+1): offsets relative to the window origin.
  st.offsets = {1, w, w + 1, w + 2, 2 * w + 1};
  st.weights = {1.0, 1.0, -4.0, 1.0, 1.0};
  run_and_check(img, st, sparse::IndexWidth::kU16);
}

TEST(SparseStencil, SingleOutputElement) {
  Rng rng(74);
  const auto in = sparse::random_dense_vector(rng, 10);
  SparseStencil st;
  st.offsets = {0, 4, 9};
  st.weights = {1.5, -2.0, 0.5};
  // reach == n: exactly one output.
  run_and_check(in, st, sparse::IndexWidth::kU32);
}

TEST(SparseStencil, ThroughputAmortizesSetup) {
  // Per-output cost must stay near taps * 1.5 cycles + small constant,
  // i.e. the shadowed re-arming (one CSR write) must not serialize.
  Rng rng(75);
  const auto in = sparse::random_dense_vector(rng, 2048);
  const auto st = random_stencil(rng, 16, 64);
  core::CcSim sim;
  StencilArgs args;
  args.in = sim.stage(in);
  args.n = 2048;
  args.offsets = sim.stage_indices(st.offsets, sparse::IndexWidth::kU16);
  args.weights = sim.stage(st.weights);
  args.taps = st.taps();
  args.reach = st.reach();
  args.out = sim.alloc(8ull * (2048 - st.reach() + 1));
  args.width = sparse::IndexWidth::kU16;
  sim.set_program(build_sparse_stencil(args));
  const auto r = sim.run();
  const double per_output =
      static_cast<double>(r.cycles) / (2048 - st.reach() + 1);
  EXPECT_LT(per_output, 16 * 1.5 + 14.0);
}

}  // namespace
}  // namespace issr::kernels
