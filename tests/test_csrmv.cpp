// CsrMV kernel validation on the single-CC simulator: every variant and
// index width against the golden reference, over randomized matrix
// families and edge cases (empty rows, empty matrices, single-element
// rows, rows longer than the accumulator unroll), plus the paper's
// throughput limits (7.2x / 6.0x over BASE at large nnz/row).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/sim.hpp"
#include "kernels/csrmv.hpp"
#include "sparse/generate.hpp"
#include "sparse/reference.hpp"
#include "sparse/suite.hpp"

namespace issr {
namespace {

using kernels::Variant;
using sparse::IndexWidth;

struct CsrmvRun {
  sparse::DenseVector y;
  core::CcSimResult sim;
};

CsrmvRun run_csrmv(Variant variant, IndexWidth width,
                   const sparse::CsrMatrix& a, const sparse::DenseVector& x) {
  core::CcSim sim;
  kernels::CsrmvArgs args;
  args.ptr = sim.stage_u32(a.ptr());
  args.idcs = sim.stage_indices(a.idcs(), width);
  args.vals = sim.stage(a.vals());
  args.nrows = a.rows();
  args.nnz = a.nnz();
  args.x = sim.stage(x);
  args.y = sim.alloc(8ull * std::max<std::uint32_t>(a.rows(), 1));
  args.width = width;
  sim.set_program(kernels::build_csrmv(variant, args));
  CsrmvRun out;
  out.sim = sim.run();
  out.y = sparse::DenseVector(sim.read_f64s(args.y, a.rows()));
  return out;
}

void check(Variant variant, IndexWidth width, const sparse::CsrMatrix& a,
           std::uint64_t seed) {
  Rng rng(seed);
  const auto x = sparse::random_dense_vector(rng, a.cols());
  const auto run = run_csrmv(variant, width, a, x);
  const auto ref = sparse::ref_csrmv(a, x);
  EXPECT_TRUE(sparse::allclose(run.y, ref, 1e-9, 1e-9))
      << kernels::to_string(variant) << " width "
      << (width == IndexWidth::kU16 ? 16 : 32) << " rows " << a.rows()
      << " nnz " << a.nnz()
      << " maxdiff " << sparse::max_abs_diff(run.y, ref);
}

struct Case {
  Variant variant;
  IndexWidth width;
};

class CsrmvAllVariants : public ::testing::TestWithParam<Case> {};

TEST_P(CsrmvAllVariants, RandomUniformMatrices) {
  const auto [v, w] = GetParam();
  Rng rng(100);
  for (int trial = 0; trial < 4; ++trial) {
    const auto rows = static_cast<std::uint32_t>(rng.uniform_int(1, 60));
    const auto cols = static_cast<std::uint32_t>(rng.uniform_int(1, 80));
    const auto nnz = rng.uniform_int(0, static_cast<std::uint64_t>(rows) *
                                            cols / 2);
    check(v, w, sparse::random_uniform_matrix(rng, rows, cols, nnz),
          200 + trial);
  }
}

TEST_P(CsrmvAllVariants, RowLengthsAroundTheUnrollBoundary) {
  // Rows of exactly 0..6 nonzeros hit every branch of the ISSR row
  // dispatch (fmul unroll, short reductions, FREP tail).
  const auto [v, w] = GetParam();
  Rng rng(101);
  for (std::uint32_t rn = 0; rn <= 6; ++rn) {
    if (rn == 0) {
      sparse::CooMatrix coo(5, 16);
      check(v, w, sparse::CsrMatrix::from_coo(coo), 300);
    } else {
      check(v, w, sparse::random_fixed_row_nnz_matrix(rng, 7, 32, rn),
            300 + rn);
    }
  }
}

TEST_P(CsrmvAllVariants, MixedEmptyAndLongRows) {
  const auto [v, w] = GetParam();
  Rng rng(102);
  sparse::CooMatrix coo(9, 64);
  // Rows 0,2,4,6,8 empty; row 1 has 1, row 3 has 40, row 5 has 3, row 7
  // has 64 (full) nonzeros.
  auto fill_row = [&](std::uint32_t r, std::uint32_t n) {
    const auto idcs = rng.distinct_sorted(n, 64);
    for (const auto c : idcs) coo.add(r, c, rng.normal());
  };
  fill_row(1, 1);
  fill_row(3, 40);
  fill_row(5, 3);
  fill_row(7, 64);
  check(v, w, sparse::CsrMatrix::from_coo(coo), 400);
}

TEST_P(CsrmvAllVariants, BandedAndPowerlawFamilies) {
  const auto [v, w] = GetParam();
  Rng rng(103);
  check(v, w, sparse::banded_matrix(rng, 48, 2), 500);
  check(v, w, sparse::powerlaw_matrix(rng, 64, 64, 5.0, 0.9), 501);
}

TEST_P(CsrmvAllVariants, SingleRowAndSingleColumn) {
  const auto [v, w] = GetParam();
  Rng rng(104);
  check(v, w, sparse::random_uniform_matrix(rng, 1, 50, 20), 600);
  check(v, w, sparse::random_uniform_matrix(rng, 50, 1, 25), 601);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, CsrmvAllVariants,
    ::testing::Values(Case{Variant::kBase, IndexWidth::kU16},
                      Case{Variant::kBase, IndexWidth::kU32},
                      Case{Variant::kSsr, IndexWidth::kU16},
                      Case{Variant::kSsr, IndexWidth::kU32},
                      Case{Variant::kIssr, IndexWidth::kU16},
                      Case{Variant::kIssr, IndexWidth::kU32}),
    [](const auto& info) {
      std::string name = kernels::to_string(info.param.variant);
      name += info.param.width == IndexWidth::kU16 ? "_u16" : "_u32";
      return name;
    });

TEST(CsrmvSpeedup, ApproachesPaperLimits) {
  Rng rng(105);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 128, 512, 128);
  const auto x = sparse::random_dense_vector(rng, 512);
  const auto base = run_csrmv(Variant::kBase, IndexWidth::kU32, a, x);
  const auto i16 = run_csrmv(Variant::kIssr, IndexWidth::kU16, a, x);
  const auto i32 = run_csrmv(Variant::kIssr, IndexWidth::kU32, a, x);
  const double s16 = static_cast<double>(base.sim.cycles) /
                     static_cast<double>(i16.sim.cycles);
  const double s32 = static_cast<double>(base.sim.cycles) /
                     static_cast<double>(i32.sim.cycles);
  EXPECT_GT(s16, 6.5);   // paper limit 7.2x
  EXPECT_LE(s16, 7.25);
  EXPECT_GT(s32, 5.4);   // paper limit 6.0x
  EXPECT_LE(s32, 6.05);
}

TEST(CsrmvSpeedup, SixteenBitWinsOnlyPastCrossover) {
  // Paper: the 16-bit kernel outperforms the 32-bit variant only past
  // nnz/row ~ 20 (longer reduction).
  Rng rng(106);
  const auto few = sparse::random_fixed_row_nnz_matrix(rng, 96, 256, 6);
  const auto many = sparse::random_fixed_row_nnz_matrix(rng, 96, 256, 64);
  const auto xf = sparse::random_dense_vector(rng, 256);
  const auto few16 = run_csrmv(Variant::kIssr, IndexWidth::kU16, few, xf);
  const auto few32 = run_csrmv(Variant::kIssr, IndexWidth::kU32, few, xf);
  const auto many16 = run_csrmv(Variant::kIssr, IndexWidth::kU16, many, xf);
  const auto many32 = run_csrmv(Variant::kIssr, IndexWidth::kU32, many, xf);
  EXPECT_LE(few16.sim.cycles * 0 + few32.sim.cycles, few16.sim.cycles)
      << "32-bit should win at low nnz/row";
  EXPECT_LT(many16.sim.cycles, many32.sim.cycles)
      << "16-bit should win at high nnz/row";
}

TEST(CsrmvSuite, QuickSuiteMatchesReference) {
  for (const auto& name : sparse::quick_suite_names()) {
    const auto a = sparse::build_suite_matrix(name);
    if (a.nnz() > 50000) continue;  // keep unit tests fast
    check(Variant::kIssr, IndexWidth::kU16, a, 700);
  }
}

}  // namespace
}  // namespace issr
