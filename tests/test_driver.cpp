// Experiment-driver tests: scenario-matrix expansion, deterministic seed
// derivation, JSON/CSV emission, and serial-vs-parallel sweep equality.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "driver/report.hpp"
#include "driver/runner.hpp"
#include "driver/runs.hpp"
#include "driver/scenario.hpp"
#include "driver/sweep.hpp"
#include "sparse/generate.hpp"

namespace issr::driver {
namespace {

// --- Scenario matrix expansion ----------------------------------------------

TEST(ScenarioMatrix, ExpandsFullCartesianProduct) {
  ScenarioMatrix m;
  m.kernels = {Kernel::kCsrmv};
  m.variants = {kernels::Variant::kBase, kernels::Variant::kIssr};
  m.widths = {sparse::IndexWidth::kU16, sparse::IndexWidth::kU32};
  m.families = {sparse::MatrixFamily::kUniform, sparse::MatrixFamily::kBanded};
  m.densities = {0.01, 0.1};
  m.cores = {1, 8};
  const auto scenarios = m.expand();
  EXPECT_EQ(scenarios.size(), 2u * 2u * 2u * 2u * 2u);

  // Every scenario is distinct.
  std::set<std::string> names;
  for (const auto& s : scenarios) {
    names.insert(s.name());
  }
  EXPECT_EQ(names.size(), scenarios.size());
}

TEST(ScenarioMatrix, SkipsMulticoreSpvv) {
  ScenarioMatrix m;
  m.kernels = {Kernel::kSpvv, Kernel::kCsrmv};
  m.variants = {kernels::Variant::kIssr};
  m.widths = {sparse::IndexWidth::kU16};
  m.cores = {1, 8};
  const auto scenarios = m.expand();
  // SpVV contributes only the cores=1 point; CsrMV contributes both.
  ASSERT_EQ(scenarios.size(), 3u);
  for (const auto& s : scenarios) {
    if (s.kernel == Kernel::kSpvv) {
      EXPECT_EQ(s.cores, 1u);
    }
  }
}

TEST(ScenarioMatrix, SpvvPinsIgnoredAxes) {
  // The family and rows axes do not apply to SpVV; they are pinned to
  // canonical values (uniform, 1) rather than crossed, so a multi-family
  // sweep does not emit mislabeled duplicate SpVV scenarios.
  ScenarioMatrix m;
  m.kernels = {Kernel::kSpvv};
  m.variants = {kernels::Variant::kIssr};
  m.widths = {sparse::IndexWidth::kU16};
  m.families = {sparse::MatrixFamily::kBanded, sparse::MatrixFamily::kTorus};
  m.rows = 500;
  const auto scenarios = m.expand();
  ASSERT_EQ(scenarios.size(), 1u);
  EXPECT_EQ(scenarios[0].family, sparse::MatrixFamily::kUniform);
  EXPECT_EQ(scenarios[0].rows, 1u);
}

TEST(ScenarioMatrix, TorusPinsDensityToActualStructure) {
  // Torus structure is fixed; the density axis is pinned to the
  // generated 5-point stencil's actual density instead of crossed.
  ScenarioMatrix m;
  m.kernels = {Kernel::kCsrmv};
  m.variants = {kernels::Variant::kIssr};
  m.widths = {sparse::IndexWidth::kU16};
  m.families = {sparse::MatrixFamily::kTorus};
  m.densities = {0.02, 0.1};
  m.rows = 192;
  const auto scenarios = m.expand();
  ASSERT_EQ(scenarios.size(), 1u);
  EXPECT_EQ(torus_side(192), 13u);
  EXPECT_DOUBLE_EQ(scenarios[0].density, 5.0 / (13.0 * 13.0));
  // Shape is pinned to the actual side^2 grid, so the derived
  // target nnz/row is exactly the stencil's 5.
  EXPECT_EQ(scenarios[0].rows, 169u);
  EXPECT_EQ(scenarios[0].cols, 169u);
  EXPECT_EQ(scenarios[0].row_nnz(), 5u);

  // Other families still sweep the full density axis alongside.
  m.families = {sparse::MatrixFamily::kTorus, sparse::MatrixFamily::kUniform};
  EXPECT_EQ(m.expand().size(), 3u);
}

TEST(ScenarioMatrix, BandedPinsSquareShape) {
  // Banded matrices are min(rows, cols)-square; the scenario records
  // that shape so its density axis targets the generated column count.
  ScenarioMatrix m;
  m.kernels = {Kernel::kCsrmv};
  m.variants = {kernels::Variant::kIssr};
  m.widths = {sparse::IndexWidth::kU16};
  m.families = {sparse::MatrixFamily::kBanded};
  m.densities = {0.05};
  m.rows = 192;
  m.cols = 256;
  const auto scenarios = m.expand();
  ASSERT_EQ(scenarios.size(), 1u);
  EXPECT_EQ(scenarios[0].rows, 192u);
  EXPECT_EQ(scenarios[0].cols, 192u);
  EXPECT_EQ(scenarios[0].row_nnz(), 10u);  // 0.05 * 192
}

TEST(ScenarioMatrix, ExpansionIsDeterministic) {
  ScenarioMatrix m;
  m.densities = {0.01, 0.05, 0.2};
  m.cores = {1, 2, 8};
  const auto a = m.expand();
  const auto b = m.expand();
  EXPECT_EQ(a, b);
}

TEST(ScenarioMatrix, SeedIndependentOfComparisonAxes) {
  // Variant / width / cores must see identical workloads (their cycle
  // counts are compared within a sweep), so the derived seed depends only
  // on kernel, family, density, and shape.
  ScenarioMatrix m;
  m.variants = {kernels::Variant::kBase, kernels::Variant::kSsr,
                kernels::Variant::kIssr};
  m.widths = {sparse::IndexWidth::kU16, sparse::IndexWidth::kU32};
  m.cores = {1, 8};
  const auto scenarios = m.expand();
  ASSERT_GT(scenarios.size(), 1u);
  for (const auto& s : scenarios) {
    EXPECT_EQ(s.seed, scenarios.front().seed) << s.name();
  }
}

TEST(ScenarioMatrix, SeedVariesWithWorkloadAxes) {
  ScenarioMatrix m;
  m.variants = {kernels::Variant::kIssr};
  m.widths = {sparse::IndexWidth::kU16};
  m.densities = {0.01, 0.02, 0.04};
  m.families = {sparse::MatrixFamily::kUniform,
                sparse::MatrixFamily::kPowerLaw};
  const auto scenarios = m.expand();
  std::set<std::uint64_t> seeds;
  for (const auto& s : scenarios) {
    seeds.insert(s.seed);
  }
  EXPECT_EQ(seeds.size(), scenarios.size());

  ScenarioMatrix m2 = m;
  m2.base_seed = m.base_seed + 1;
  EXPECT_NE(m2.expand().front().seed, scenarios.front().seed);
}

TEST(Scenario, RowNnzFollowsDensity) {
  Scenario s;
  s.cols = 200;
  s.density = 0.05;
  EXPECT_EQ(s.row_nnz(), 10u);
  s.density = 1e-9;  // clamps up to one nonzero per row
  EXPECT_EQ(s.row_nnz(), 1u);
  s.density = 1.0;
  EXPECT_EQ(s.row_nnz(), 200u);
}

TEST(Scenario, ParseHelpersRoundTrip) {
  Kernel k;
  EXPECT_TRUE(parse_kernel("spvv", k));
  EXPECT_EQ(k, Kernel::kSpvv);
  EXPECT_FALSE(parse_kernel("gemm", k));

  kernels::Variant v;
  EXPECT_TRUE(parse_variant("issr", v));
  EXPECT_EQ(v, kernels::Variant::kIssr);
  EXPECT_FALSE(parse_variant("", v));

  sparse::IndexWidth w;
  EXPECT_TRUE(parse_width("16", w));
  EXPECT_EQ(w, sparse::IndexWidth::kU16);
  EXPECT_TRUE(parse_width("u32", w));
  EXPECT_EQ(w, sparse::IndexWidth::kU32);
  EXPECT_FALSE(parse_width("64", w));

  sparse::MatrixFamily f;
  EXPECT_TRUE(parse_family("powerlaw", f));
  EXPECT_EQ(f, sparse::MatrixFamily::kPowerLaw);
  EXPECT_FALSE(parse_family("dense", f));
}

TEST(Scenario, NameCarriesSystemTokensOnlyForMultiCluster) {
  Scenario s;
  s.noc_links = 2;
  s.noc_latency = 9;
  s.steal = false;
  // Single-cluster scenarios execute on the cluster/CC simulators, which
  // have no NoC: whatever the system settings say, their names stay
  // exactly the historical single-cluster names.
  EXPECT_EQ(s.name().find("/nl"), std::string::npos);
  EXPECT_EQ(s.name().find("/lt"), std::string::npos);
  EXPECT_EQ(s.name().find("/nosteal"), std::string::npos);
  s.clusters = 8;
  EXPECT_NE(s.name().find("/x8/nl2/lt9/nosteal"), std::string::npos);
  // Default settings keep the historical multi-cluster name bytewise.
  s.noc_links = 1;
  s.noc_latency = 4;
  s.steal = true;
  const auto name = s.name();
  EXPECT_NE(name.find("/x8"), std::string::npos);
  EXPECT_EQ(name.find("/nl"), std::string::npos);
  EXPECT_EQ(name.find("/lt"), std::string::npos);
  EXPECT_EQ(name.find("/nosteal"), std::string::npos);
}

// --- Sweep-scheduler cost model ----------------------------------------------

TEST(Sweep, EstimatedCostModelsPowerLawShardSkew) {
  Scenario uniform;
  uniform.kernel = Kernel::kCsrmv;
  uniform.rows = 2048;
  uniform.cols = 1024;
  uniform.density = 0.02;
  uniform.cores = 8;
  Scenario powerlaw = uniform;
  powerlaw.family = sparse::MatrixFamily::kPowerLaw;
  // One cluster has no shard skew: the two families cost the same.
  EXPECT_DOUBLE_EQ(estimated_cost(powerlaw), estimated_cost(uniform));
  // Across clusters the heaviest power-law shard runs ~2x the mean (a
  // hub row is an unsplittable serial chain), and every cluster's
  // workers spend the cycles the heaviest shard stretches — the
  // dispatch key must rank the power-law run well ahead of its uniform
  // twin or the sweep tail-latches on it.
  uniform.clusters = 8;
  powerlaw.clusters = 8;
  EXPECT_DOUBLE_EQ(estimated_cost(powerlaw), 2.0 * estimated_cost(uniform));
}

TEST(Sweep, EstimatedCostDividesByEffectiveSysThreads) {
  Scenario s;
  s.kernel = Kernel::kCsrmv;
  s.rows = 2048;
  s.cols = 1024;
  s.density = 0.02;
  s.cores = 8;
  s.clusters = 8;
  // The parallel System engine shrinks a multi-cluster run's wall-clock
  // by min(clusters, threads); the LPT dispatch key must track that or
  // a parallelized 8-cluster row hogs the front of the schedule it no
  // longer deserves.
  EXPECT_DOUBLE_EQ(estimated_cost(s, 4), estimated_cost(s) / 4.0);
  EXPECT_DOUBLE_EQ(estimated_cost(s, 8), estimated_cost(s) / 8.0);
  // Threads beyond the cluster count have no lanes to run: the divisor
  // saturates at the cluster count.
  EXPECT_DOUBLE_EQ(estimated_cost(s, 64), estimated_cost(s, 8));
  // Single-cluster runs use the serial engine at every thread count.
  s.clusters = 1;
  EXPECT_DOUBLE_EQ(estimated_cost(s, 8), estimated_cost(s));
}

// --- Single-scenario execution ----------------------------------------------

ScenarioMatrix tiny_matrix() {
  ScenarioMatrix m;
  m.kernels = {Kernel::kCsrmv};
  m.variants = {kernels::Variant::kBase, kernels::Variant::kIssr};
  m.widths = {sparse::IndexWidth::kU16};
  m.densities = {0.1};
  m.cores = {1};
  m.rows = 24;
  m.cols = 48;
  return m;
}

TEST(RunScenario, CsrmvValidatesAndReportsMetrics) {
  const auto scenarios = tiny_matrix().expand();
  ASSERT_EQ(scenarios.size(), 2u);
  const auto base = run_scenario(scenarios[0]);
  const auto issr = run_scenario(scenarios[1]);
  for (const auto* r : {&base, &issr}) {
    EXPECT_TRUE(r->ok) << r->scenario.name();
    EXPECT_GT(r->cycles, 0u);
    EXPECT_GT(r->nnz, 0u);
    EXPECT_GT(r->macs, 0u);
    EXPECT_GT(r->fpu_util, 0.0);
  }
  // Same derived seed => same workload => comparable cycle counts; the
  // ISSR kernel must beat BASE even on a tiny matrix.
  EXPECT_EQ(base.nnz, issr.nnz);
  EXPECT_LT(issr.cycles, base.cycles);
}

TEST(RunScenario, TorusReportsActualDimensions) {
  // The torus family has fixed structure (sqrt(rows)-sided grid); the
  // result record must carry the generated dimensions, not the request.
  Scenario s;
  s.kernel = Kernel::kCsrmv;
  s.variant = kernels::Variant::kIssr;
  s.width = sparse::IndexWidth::kU16;
  s.family = sparse::MatrixFamily::kTorus;
  s.rows = 192;
  s.cols = 256;
  s.seed = derive_seed(42, s.kernel, s.family, s.density, s.rows, s.cols);
  const auto r = run_scenario(s);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.rows, 169u);  // floor(sqrt(192))^2
  EXPECT_EQ(r.cols, 169u);
  EXPECT_EQ(r.nnz, 5u * 169u);  // 5-point stencil with diagonal
}

TEST(RunScenario, SpvvValidates) {
  Scenario s;
  s.kernel = Kernel::kSpvv;
  s.variant = kernels::Variant::kIssr;
  s.width = sparse::IndexWidth::kU32;
  s.density = 0.25;
  s.rows = 1;
  s.cols = 128;
  s.seed = derive_seed(7, s.kernel, s.family, s.density, s.rows, s.cols);
  const auto r = run_scenario(s);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.nnz, 32u);
  EXPECT_GT(r.cycles, 0u);
}

// --- Parallel sweep determinism ---------------------------------------------

TEST(RunScenarios, ParallelMatchesSerialBitwise) {
  auto m = tiny_matrix();
  m.variants = {kernels::Variant::kBase, kernels::Variant::kSsr,
                kernels::Variant::kIssr};
  m.densities = {0.05, 0.2};
  const auto scenarios = m.expand();
  ASSERT_EQ(scenarios.size(), 6u);

  const auto serial = run_scenarios(scenarios, 1);
  const auto parallel = run_scenarios(scenarios, 4);
  ASSERT_EQ(serial.size(), parallel.size());

  // Results must agree field-for-field, and the emitted documents must be
  // bytewise identical (the acceptance bar for the issr_run CLI).
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].scenario, parallel[i].scenario);
    EXPECT_EQ(serial[i].cycles, parallel[i].cycles) << i;
    EXPECT_EQ(serial[i].macs, parallel[i].macs) << i;
    EXPECT_EQ(serial[i].nnz, parallel[i].nnz) << i;
    EXPECT_EQ(serial[i].fpu_util, parallel[i].fpu_util) << i;
  }
  EXPECT_EQ(results_to_json(serial), results_to_json(parallel));
  EXPECT_EQ(results_to_csv(serial), results_to_csv(parallel));
}

TEST(RunScenarios, MoreJobsThanScenarios) {
  ScenarioMatrix m = tiny_matrix();
  m.variants = {kernels::Variant::kIssr};
  const auto scenarios = m.expand();
  ASSERT_EQ(scenarios.size(), 1u);
  const auto results = run_scenarios(scenarios, 16);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].ok);
}

// --- Report emission ---------------------------------------------------------

std::vector<ScenarioResult> fake_results() {
  Scenario s;
  s.kernel = Kernel::kCsrmv;
  s.variant = kernels::Variant::kIssr;
  s.width = sparse::IndexWidth::kU16;
  s.family = sparse::MatrixFamily::kUniform;
  s.density = 0.125;
  s.rows = 10;
  s.cols = 20;
  s.cores = 8;
  s.seed = 12345;
  ScenarioResult r;
  r.scenario = s;
  r.ok = true;
  r.rows = 10;
  r.cols = 20;
  r.nnz = 30;
  r.cycles = 400;
  r.fpu_util = 0.5;
  r.macs = 30;
  r.macs_per_cycle = 0.075;
  r.core_cycles = 3200;
  r.stalls[trace::Bucket::kFpCompute] = 200;
  r.stalls[trace::Bucket::kIssue] = 2800;
  r.stalls[trace::Bucket::kTcdmConflict] = 200;
  return {r};
}

TEST(Report, JsonContainsSchemaAndFields) {
  const auto json = results_to_json(fake_results());
  EXPECT_NE(json.find("\"schema\": \"issr_run.results.v6\""),
            std::string::npos);
  // v6 row-disposition columns ride on every row.
  EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"fault\": \"\""), std::string::npos);
  // Engine-provenance header and per-row metrics block.
  EXPECT_NE(json.find("\"engine\": {"), std::string::npos);
  EXPECT_NE(json.find("\"build_type\": "), std::string::npos);
  EXPECT_NE(json.find("\"metrics\": {"), std::string::npos);
  EXPECT_NE(json.find("\"kernel\": \"csrmv\""), std::string::npos);
  EXPECT_NE(json.find("\"variant\": \"issr\""), std::string::npos);
  EXPECT_NE(json.find("\"index_bits\": 16"), std::string::npos);
  EXPECT_NE(json.find("\"density\": 0.125"), std::string::npos);
  EXPECT_NE(json.find("\"cores\": 8"), std::string::npos);
  // v3 multi-cluster axis column.
  EXPECT_NE(json.find("\"clusters\": 1"), std::string::npos);
  // v4 interconnect/steal settings and scaling efficiency (1 for a
  // single-cluster row).
  EXPECT_NE(json.find("\"noc_links\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"noc_latency\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"steal\": true"), std::string::npos);
  EXPECT_NE(json.find("\"scaling_efficiency\": 1"), std::string::npos);
  // Seeds exceed 2^53 in general, so both emitters carry them as hex
  // strings that no double parser or CSV type inference can round.
  EXPECT_NE(json.find("\"seed\": \"0x0000000000003039\""), std::string::npos);
  EXPECT_NE(json.find("\"ok\": true"), std::string::npos);
  EXPECT_NE(json.find("\"cycles\": 400"), std::string::npos);
  EXPECT_NE(json.find("\"fpu_util\": 0.5"), std::string::npos);
  // v2 stall-attribution columns.
  EXPECT_NE(json.find("\"core_cycles\": 3200"), std::string::npos);
  EXPECT_NE(json.find("\"stall_fp_compute\": 200"), std::string::npos);
  EXPECT_NE(json.find("\"stall_issue\": 2800"), std::string::npos);
  EXPECT_NE(json.find("\"stall_other\": 0"), std::string::npos);
  // Balanced braces/brackets and a trailing newline.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_EQ(json.back(), '\n');
}

TEST(Report, JsonEmptyResultsIsWellFormed) {
  const auto json = results_to_json({});
  EXPECT_NE(json.find("\"results\": []"), std::string::npos);
}

TEST(Report, CsvHasHeaderAndOneRowPerResult) {
  const auto csv = results_to_csv(fake_results());
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
  EXPECT_EQ(csv.find("kernel,variant,index_bits,family,"), 0u);
  EXPECT_NE(csv.find("csrmv,issr,16,uniform,0.125,10,20,8,1,1,4,true,"
                     "0x0000000000003039,30,true,ok,,400"),
            std::string::npos);
  // Header and row have equal column counts.
  const auto header = csv.substr(0, csv.find('\n'));
  const auto row = csv.substr(csv.find('\n') + 1);
  EXPECT_EQ(std::count(header.begin(), header.end(), ','),
            std::count(row.begin(), row.end(), ','));
}

TEST(Report, ScalingEfficiencyPairsRowsWithSingleClusterTwin) {
  auto rs = fake_results();
  // An 8-cluster twin of the fake single-cluster row (same kernel,
  // variant, width, family, density, cores, seed) at 2x its cycles:
  // speedup 400/200 = 2 on 8 clusters -> efficiency 0.25.
  ScenarioResult multi = rs[0];
  multi.scenario.clusters = 8;
  multi.cycles = 200;
  rs.push_back(multi);
  // A multi-cluster row whose baseline is not in the sweep: efficiency
  // is unknowable from this result set and reports 0.
  ScenarioResult orphan = multi;
  orphan.scenario.seed = 99;
  rs.push_back(orphan);
  const auto json = results_to_json(rs);
  EXPECT_NE(json.find("\"scaling_efficiency\": 1,"), std::string::npos);
  EXPECT_NE(json.find("\"scaling_efficiency\": 0.25,"), std::string::npos);
  EXPECT_NE(json.find("\"scaling_efficiency\": 0,"), std::string::npos);
  // CSV emits the same efficiency column for the same rows.
  const auto csv = results_to_csv(rs);
  EXPECT_NE(csv.find(",0.25,"), std::string::npos);
}

TEST(Report, TableHasOneRowPerResult) {
  const auto t = results_table(fake_results());
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.cols(), 9u);
}

// --- Composable run helpers (driver/runs.hpp) --------------------------------

TEST(Runs, SpvvHelperValidates) {
  Rng rng(11);
  const auto a = sparse::random_sparse_vector(rng, 64, 16);
  const auto b = sparse::random_dense_vector(rng, 64);
  const auto r = run_spvv_cc(kernels::Variant::kIssr,
                             sparse::IndexWidth::kU16, a, b);
  EXPECT_TRUE(r.ok);
  EXPECT_GT(r.sim.cycles, 0u);
}

TEST(Runs, CsrmvHelperValidates) {
  Rng rng(12);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 16, 32, 4);
  const auto x = sparse::random_dense_vector(rng, 32);
  const auto r = run_csrmv_cc(kernels::Variant::kSsr,
                              sparse::IndexWidth::kU32, a, x);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.y.size(), 16u);
}

TEST(Runs, SysTuningShapesTimingOnly) {
  Rng rng(14);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 96, 128, 9);
  const auto x = sparse::random_dense_vector(rng, 128);
  const auto run = [&](const SysTuning& tuning) {
    return run_csrmv_sys(kernels::Variant::kIssr, sparse::IndexWidth::kU16,
                         2, 4, a, x, nullptr, true, {}, tuning);
  };
  const auto steal_on = run(SysTuning{});
  const auto steal_off = run(SysTuning{1, 4, false});
  const auto slow_noc = run(SysTuning{1, 64, true});
  EXPECT_TRUE(steal_on.ok);
  EXPECT_TRUE(steal_off.ok);
  EXPECT_TRUE(slow_noc.ok);
  EXPECT_TRUE(steal_on.sys.steal);
  EXPECT_FALSE(steal_off.sys.steal);
  // Every tuning combination is timing-only: y is bitwise identical
  // whether tiles move via the dynamic steal protocol or the static
  // shards, and whatever the link latency is.
  ASSERT_EQ(steal_on.sys.y.size(), a.rows());
  for (std::size_t i = 0; i < steal_on.sys.y.size(); ++i) {
    EXPECT_EQ(steal_on.sys.y[i], steal_off.sys.y[i]) << i;
    EXPECT_EQ(steal_on.sys.y[i], slow_noc.sys.y[i]) << i;
  }
  // ...but the timing does consult the knobs: a 64-cycle link latency
  // must cost cycles over the 4-cycle default.
  EXPECT_GT(slow_noc.sys.system.cycles, steal_on.sys.system.cycles);
}

}  // namespace
}  // namespace issr::driver
