// Host-parallel System engine (system/par_engine.hpp) tests: bitwise
// equality against the serial lockstep engine — cycles, per-cluster stall
// buckets, NoC counters, simulated y bits, steal tile ownership, trace
// bytes — for every kernel family at 1/2/4/8 clusters, steal on and off,
// at 1/2/8 host threads; fault parity (wedged barriers, frozen DMA) under
// threads; and unit tests of the thread-count resolution and the seam
// quantum computation (Cluster::next_seam with a controller probe).
#include <gtest/gtest.h>

#include <functional>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "sparse/generate.hpp"
#include "sparse/reference.hpp"
#include "system/csrmm_sys.hpp"
#include "system/csrmv_sys.hpp"
#include "system/par_engine.hpp"
#include "trace/chrome.hpp"
#include "trace/ring.hpp"

namespace issr::system {
namespace {

using kernels::Variant;
using sparse::IndexWidth;

// --- Host-thread resolution --------------------------------------------------

TEST(ParEngine, ResolveHostThreadsClampsAndAutoDetects) {
  EXPECT_EQ(resolve_host_threads(1, 8), 1u);
  EXPECT_EQ(resolve_host_threads(4, 8), 4u);
  EXPECT_EQ(resolve_host_threads(16, 8), 8u);  // clamped to clusters
  EXPECT_EQ(resolve_host_threads(3, 2), 2u);
  // 0 = auto: min(clusters, hardware_concurrency) — at least 1, never
  // more than the cluster count.
  const unsigned auto8 = resolve_host_threads(0, 8);
  EXPECT_GE(auto8, 1u);
  EXPECT_LE(auto8, 8u);
  EXPECT_EQ(resolve_host_threads(0, 1), 1u);
}

// --- Seam quantum computation ------------------------------------------------

// Cluster::next_seam composes three bounds: a transferring DMA pins the
// seam to `now`, a pending DMA completion bounds it by its maturity, and
// the controller seam probe bounds it by the controller's next shared
// touch — with kCycleHold given absolute priority over the completion
// bound (an arrived controller polls the barrier every tick, so it must
// never free-run ahead of an undecided release).
TEST(ParEngine, NextSeamComposesProbeAndDmaBounds) {
  cluster::ClusterConfig cfg;
  cfg.num_workers = 1;
  cluster::Cluster cl(cfg, {isa::Program{}});

  // No controller: the cluster is seam-free until an external event.
  EXPECT_EQ(cl.next_seam(10), kCycleNever);

  // An active controller without a probe pins the seam to `now` (always
  // correct: forces lockstep).
  cl.set_controller([](cluster::Cluster&, cycle_t) {});
  cl.set_controller_done(false);
  EXPECT_EQ(cl.next_seam(10), 10u);

  // A probe bounds the seam; results below `now` clamp up to `now`.
  cycle_t probe_result = 25;
  cl.set_controller_seam_probe([&](cycle_t) { return probe_result; });
  EXPECT_EQ(cl.next_seam(10), 25u);
  probe_result = 3;
  EXPECT_EQ(cl.next_seam(10), 10u);
  probe_result = kCycleNever;
  EXPECT_EQ(cl.next_seam(10), kCycleNever);

  // kCycleHold passes through when nothing local is pending: the engine
  // parks the lane until the barrier's epoch moves.
  probe_result = kCycleHold;
  EXPECT_EQ(cl.next_seam(10), kCycleHold);

  // A finished controller drops out of the seam computation entirely.
  cl.set_controller_done(true);
  EXPECT_EQ(cl.next_seam(10), kCycleNever);
}

// --- Bitwise equality helpers ------------------------------------------------

void expect_cluster_equal(const cluster::ClusterResult& a,
                          const cluster::ClusterResult& b, unsigned c) {
  EXPECT_EQ(a.cycles, b.cycles) << "cluster " << c;
  EXPECT_EQ(a.aborted, b.aborted) << "cluster " << c;
  EXPECT_EQ(a.fault.code, b.fault.code) << "cluster " << c;
  ASSERT_EQ(a.stalls.size(), b.stalls.size()) << "cluster " << c;
  for (std::size_t w = 0; w < a.stalls.size(); ++w) {
    EXPECT_EQ(a.stalls[w], b.stalls[w]) << "cluster " << c << " worker " << w;
  }
  EXPECT_EQ(a.total_macs(), b.total_macs()) << "cluster " << c;
  EXPECT_EQ(a.total_fmadd(), b.total_fmadd()) << "cluster " << c;
  EXPECT_EQ(a.dma.jobs, b.dma.jobs) << "cluster " << c;
  EXPECT_EQ(a.dma.bytes, b.dma.bytes) << "cluster " << c;
  EXPECT_EQ(a.dma.busy_cycles, b.dma.busy_cycles) << "cluster " << c;
  EXPECT_EQ(a.dma.noc_denied_cycles, b.dma.noc_denied_cycles)
      << "cluster " << c;
}

// Everything a result file or report could contain must match bitwise;
// only host-side diagnostics (ParStats, the per-cluster ff decomposition)
// may differ between the engines.
void expect_system_equal(const SystemResult& a, const SystemResult& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.aborted, b.aborted);
  EXPECT_EQ(a.fault.code, b.fault.code);
  EXPECT_EQ(a.fault.cycle, b.fault.cycle);
  EXPECT_EQ(a.main_mem_read, b.main_mem_read);
  EXPECT_EQ(a.main_mem_written, b.main_mem_written);
  EXPECT_EQ(a.noc_group_conflicts, b.noc_group_conflicts);
  ASSERT_EQ(a.noc_links.size(), b.noc_links.size());
  for (std::size_t c = 0; c < a.noc_links.size(); ++c) {
    EXPECT_EQ(a.noc_links[c].beats_in, b.noc_links[c].beats_in) << c;
    EXPECT_EQ(a.noc_links[c].beats_out, b.noc_links[c].beats_out) << c;
    EXPECT_EQ(a.noc_links[c].denied_in, b.noc_links[c].denied_in) << c;
    EXPECT_EQ(a.noc_links[c].denied_out, b.noc_links[c].denied_out) << c;
  }
  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (std::size_t c = 0; c < a.clusters.size(); ++c) {
    expect_cluster_equal(a.clusters[c], b.clusters[c],
                         static_cast<unsigned>(c));
  }
}

void expect_csrmv_equal(const SysCsrmvResult& a, const SysCsrmvResult& b) {
  expect_system_equal(a.system, b.system);
  ASSERT_EQ(a.y.size(), b.y.size());
  for (std::size_t i = 0; i < a.y.size(); ++i) {
    EXPECT_EQ(a.y[i], b.y[i]) << "row " << i;
  }
  EXPECT_EQ(a.tile_owner, b.tile_owner);
  EXPECT_EQ(a.queue.claims, b.queue.claims);
  EXPECT_EQ(a.queue.claim_wait_cycles, b.queue.claim_wait_cycles);
  EXPECT_EQ(a.queue.send_denied, b.queue.send_denied);
  EXPECT_EQ(a.queue.deliver_denied, b.queue.deliver_denied);
}

// --- CsrMV: serial vs parallel, all families ---------------------------------

struct ParCase {
  sparse::MatrixFamily family;
  unsigned clusters;
  bool steal;
};

class ParEngineCsrmv : public ::testing::TestWithParam<ParCase> {};

TEST_P(ParEngineCsrmv, BitwiseEqualToSerialAtEveryThreadCount) {
  const auto [family, clusters, steal] = GetParam();
  Rng rng(7100);
  const auto a = sparse::generate_matrix(rng, family, 256, 192, 14);
  const auto x = sparse::random_dense_vector(rng, a.cols());
  SysCsrmvConfig cfg;
  cfg.variant = Variant::kIssr;
  cfg.width = IndexWidth::kU16;
  cfg.system.num_clusters = clusters;
  cfg.steal = steal;
  cfg.system.host_threads = 1;
  const auto serial = run_csrmv_system(a, x, cfg);
  ASSERT_FALSE(serial.system.aborted);
  EXPECT_TRUE(sparse::allclose(serial.y, sparse::ref_csrmv(a, x), 1e-9, 1e-9));
  for (const unsigned threads : {2u, 8u}) {
    cfg.system.host_threads = threads;
    const auto par = run_csrmv_system(a, x, cfg);
    expect_csrmv_equal(par, serial);
    if (threads <= clusters) {
      EXPECT_EQ(par.system.par.host_threads, threads) << threads;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesByClusters, ParEngineCsrmv,
    ::testing::Values(
        ParCase{sparse::MatrixFamily::kUniform, 2, true},
        ParCase{sparse::MatrixFamily::kUniform, 4, true},
        ParCase{sparse::MatrixFamily::kUniform, 8, true},
        ParCase{sparse::MatrixFamily::kUniform, 4, false},
        ParCase{sparse::MatrixFamily::kUniform, 8, false},
        ParCase{sparse::MatrixFamily::kBanded, 4, true},
        ParCase{sparse::MatrixFamily::kBanded, 8, false},
        ParCase{sparse::MatrixFamily::kPowerLaw, 4, true},
        ParCase{sparse::MatrixFamily::kPowerLaw, 8, true},
        ParCase{sparse::MatrixFamily::kPowerLaw, 2, false},
        ParCase{sparse::MatrixFamily::kTorus, 4, true},
        ParCase{sparse::MatrixFamily::kTorus, 8, true}),
    [](const auto& info) {
      std::string name = sparse::to_string(info.param.family);
      name += "_x" + std::to_string(info.param.clusters);
      name += info.param.steal ? "_steal" : "_static";
      return name;
    });

TEST(ParEngineCsrmv, SingleClusterFallsBackToSerialEngine) {
  Rng rng(7101);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 128, 128, 12);
  const auto x = sparse::random_dense_vector(rng, a.cols());
  SysCsrmvConfig cfg;
  cfg.system.num_clusters = 1;
  cfg.system.host_threads = 8;
  const auto r = run_csrmv_system(a, x, cfg);
  ASSERT_FALSE(r.system.aborted);
  EXPECT_EQ(r.system.par.host_threads, 1u);
  EXPECT_EQ(r.system.par.rounds, 0u);
}

TEST(ParEngineCsrmv, FastForwardOffStillBitwiseEqual) {
  Rng rng(7102);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 192, 160, 10);
  const auto x = sparse::random_dense_vector(rng, a.cols());
  SysCsrmvConfig cfg;
  cfg.system.num_clusters = 4;
  cfg.system.fast_forward = false;
  cfg.system.host_threads = 1;
  const auto serial = run_csrmv_system(a, x, cfg);
  cfg.system.host_threads = 4;
  const auto par = run_csrmv_system(a, x, cfg);
  expect_csrmv_equal(par, serial);
}

TEST(ParEngineCsrmv, TraceBytesIdenticalToSerial) {
  Rng rng(7103);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 96, 96, 8);
  const auto x = sparse::random_dense_vector(rng, a.cols());
  SysCsrmvConfig cfg;
  cfg.system.num_clusters = 4;
  trace::RingBufferSink serial_sink;
  cfg.trace_sink = &serial_sink;
  cfg.system.host_threads = 1;
  const auto serial = run_csrmv_system(a, x, cfg);
  trace::RingBufferSink par_sink;
  cfg.trace_sink = &par_sink;
  cfg.system.host_threads = 4;
  const auto par = run_csrmv_system(a, x, cfg);
  expect_csrmv_equal(par, serial);
  ASSERT_GT(serial_sink.size(), 0u);
  EXPECT_EQ(trace::to_chrome_json(par_sink), trace::to_chrome_json(serial_sink));
}

TEST(ParEngineCsrmv, QuantumStatsAccountForParallelProgress) {
  // A healthy parallel run must actually run cycles outside lockstep and
  // account every lane quantum in the histogram.
  Rng rng(7104);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 512, 256, 24);
  const auto x = sparse::random_dense_vector(rng, a.cols());
  SysCsrmvConfig cfg;
  cfg.system.num_clusters = 4;
  cfg.system.host_threads = 4;
  const auto r = run_csrmv_system(a, x, cfg);
  ASSERT_FALSE(r.system.aborted);
  const ParStats& p = r.system.par;
  EXPECT_EQ(p.host_threads, 4u);
  EXPECT_GT(p.rounds, 0u);
  EXPECT_GT(p.lockstep_cycles, 0u);
  EXPECT_GT(p.parallel_ticks + p.ff_credited, 0u);
  std::uint64_t hist_total = 0;
  for (unsigned i = 0; i < ParStats::kQuantumBuckets; ++i) {
    hist_total += p.quantum_hist[i];
  }
  EXPECT_EQ(hist_total, p.quantum_count);
  EXPECT_LE(p.lockstep_cycles, r.system.cycles + 1);
}

// --- CsrMM: serial vs parallel -----------------------------------------------

void expect_csrmm_equal(const SysCsrmmResult& a, const SysCsrmmResult& b) {
  expect_system_equal(a.system, b.system);
  ASSERT_EQ(a.y.rows(), b.y.rows());
  ASSERT_EQ(a.y.cols(), b.y.cols());
  for (std::size_t i = 0; i < a.y.rows(); ++i) {
    for (std::size_t j = 0; j < a.y.cols(); ++j) {
      EXPECT_EQ(a.y.at(i, j), b.y.at(i, j)) << i << "," << j;
    }
  }
  EXPECT_EQ(a.tile_owner, b.tile_owner);
}

struct MmParCase {
  unsigned clusters;
  bool steal;
};

class ParEngineCsrmm : public ::testing::TestWithParam<MmParCase> {};

TEST_P(ParEngineCsrmm, BitwiseEqualToSerialAtEveryThreadCount) {
  const auto [clusters, steal] = GetParam();
  Rng rng(7200);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 128, 96, 10);
  const auto b = sparse::random_dense_matrix(rng, a.cols(), 24);
  SysCsrmmConfig cfg;
  cfg.system.num_clusters = clusters;
  cfg.steal = steal;
  cfg.system.host_threads = 1;
  const auto serial = run_csrmm_system(a, b, cfg);
  ASSERT_FALSE(serial.system.aborted);
  for (const unsigned threads : {2u, 8u}) {
    cfg.system.host_threads = threads;
    const auto par = run_csrmm_system(a, b, cfg);
    expect_csrmm_equal(par, serial);
  }
}

INSTANTIATE_TEST_SUITE_P(ClustersBySteal, ParEngineCsrmm,
                         ::testing::Values(MmParCase{2, true},
                                           MmParCase{4, true},
                                           MmParCase{8, true},
                                           MmParCase{4, false},
                                           MmParCase{8, false}),
                         [](const auto& info) {
                           std::string name =
                               "x" + std::to_string(info.param.clusters);
                           name += info.param.steal ? "_steal" : "_static";
                           return name;
                         });

// --- Fault parity under threads ----------------------------------------------

// A wedged SysBarrier (release dropped) must classify identically —
// fault code, detection cycle, stall buckets — whether the serial or the
// parallel engine ran: the parallel engine's free-run terminal release
// must burn held lanes to the same watchdog/budget points.
TEST(ParEngineFaults, DroppedSysBarrierParity) {
  Rng rng(7300);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 96, 96, 8);
  const auto x = sparse::random_dense_vector(rng, a.cols());
  for (const bool steal : {false, true}) {
    SysCsrmvConfig cfg;
    cfg.system.num_clusters = 4;
    cfg.steal = steal;
    cfg.inject.drop_sys_barrier = true;
    cfg.max_cycles = 400'000;
    cfg.system.host_threads = 1;
    const auto serial = run_csrmv_system(a, x, cfg);
    ASSERT_TRUE(serial.system.aborted) << "steal " << steal;
    for (const unsigned threads : {2u, 8u}) {
      cfg.system.host_threads = threads;
      const auto par = run_csrmv_system(a, x, cfg);
      expect_csrmv_equal(par, serial);
    }
  }
}

TEST(ParEngineFaults, DroppedClusterBarrierParity) {
  // The system CsrMV workers are controller-paced and never rendezvous on
  // the cluster HW barrier, so this injection stays armed-but-unconsumed:
  // the run completes clean. What must hold is that arming it perturbs the
  // parallel engine exactly as little as the serial one — byte for byte.
  Rng rng(7301);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 96, 96, 8);
  const auto x = sparse::random_dense_vector(rng, a.cols());
  SysCsrmvConfig cfg;
  cfg.system.num_clusters = 4;
  cfg.inject.drop_cluster_barrier = true;
  cfg.max_cycles = 400'000;
  cfg.system.host_threads = 1;
  const auto serial = run_csrmv_system(a, x, cfg);
  ASSERT_FALSE(serial.system.aborted);
  for (const unsigned threads : {2u, 8u}) {
    cfg.system.host_threads = threads;
    const auto par = run_csrmv_system(a, x, cfg);
    expect_csrmv_equal(par, serial);
  }
}

TEST(ParEngineFaults, StalledDmaParity) {
  Rng rng(7302);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 96, 96, 8);
  const auto x = sparse::random_dense_vector(rng, a.cols());
  SysCsrmvConfig cfg;
  cfg.system.num_clusters = 4;
  cfg.inject.stall_dma = true;
  cfg.max_cycles = 20'000;
  cfg.system.host_threads = 1;
  const auto serial = run_csrmv_system(a, x, cfg);
  ASSERT_TRUE(serial.system.aborted);
  for (const unsigned threads : {2u, 8u}) {
    cfg.system.host_threads = threads;
    const auto par = run_csrmv_system(a, x, cfg);
    expect_csrmv_equal(par, serial);
  }
}

}  // namespace
}  // namespace issr::system
