#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sparse/csf.hpp"
#include "sparse/generate.hpp"

namespace issr::sparse {
namespace {

TEST(Csf, BuildsTreeFromEntries) {
  std::vector<TensorEntry> entries = {
      {1, 0, 2, 1.0}, {0, 1, 1, 2.0}, {0, 1, 3, 3.0}, {0, 0, 0, 4.0},
  };
  const auto t = CsfTensor::from_entries(2, 2, 4, entries);
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.num_slices(), 2u);
  EXPECT_EQ(t.num_fibers(), 3u);
  EXPECT_EQ(t.nnz(), 4u);
  // Slice 0 has fibers (0,0) and (0,1); slice 1 has fiber (1,0).
  EXPECT_EQ(t.slice_idcs()[0], 0u);
  EXPECT_EQ(t.fiber_ptr()[1] - t.fiber_ptr()[0], 2u);
}

TEST(Csf, MergesDuplicateCoordinates) {
  std::vector<TensorEntry> entries = {{0, 0, 0, 1.0}, {0, 0, 0, 2.5}};
  const auto t = CsfTensor::from_entries(1, 1, 1, entries);
  EXPECT_EQ(t.nnz(), 1u);
  EXPECT_EQ(t.vals()[0], 3.5);
}

TEST(Csf, EntriesRoundTripCanonical) {
  Rng rng(21);
  const auto t = random_csf_tensor(rng, 6, 7, 8, 64);
  const auto entries = t.to_entries();
  const auto t2 = CsfTensor::from_entries(6, 7, 8, entries);
  EXPECT_EQ(t2.to_entries(), entries);
  EXPECT_EQ(t2.nnz(), t.nnz());
}

TEST(Csf, LeafFibersAreValidSparseFibers) {
  Rng rng(22);
  const auto t = random_csf_tensor(rng, 4, 5, 32, 50);
  for (std::uint32_t f = 0; f < t.num_fibers(); ++f) {
    const auto fiber = t.leaf_fiber(f);
    EXPECT_TRUE(fiber.valid());
    EXPECT_EQ(fiber.dim(), 32u);
    EXPECT_GE(fiber.nnz(), 1u);
  }
}

TEST(Csf, TtvMatchesDenseComputation) {
  Rng rng(23);
  const auto t = random_csf_tensor(rng, 5, 6, 16, 80);
  const auto v = random_dense_vector(rng, 16);
  const auto y = t.ttv_mode2(v);

  DenseMatrix expected(5, 6);
  for (const auto& e : t.to_entries()) {
    expected.at(e.i, e.j) += e.val * v[e.k];
  }
  EXPECT_LT(max_abs_diff(y, expected), 1e-12);
}

TEST(Csf, EmptyTensor) {
  const auto t = CsfTensor::from_entries(3, 3, 3, {});
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.nnz(), 0u);
  EXPECT_EQ(t.num_slices(), 0u);
  const auto y = t.ttv_mode2(DenseVector(3));
  EXPECT_EQ(max_abs_diff(y, DenseMatrix(3, 3)), 0.0);
}

}  // namespace
}  // namespace issr::sparse
