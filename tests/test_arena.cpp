// Arena allocator tests: alignment, chunk growth/recycling across
// reset(), oversize allocations, and arena-backed BackingStore pages
// behaving identically to heap-backed ones.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "common/arena.hpp"
#include "mem/backing_store.hpp"

namespace issr {
namespace {

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  Arena a(256);
  auto* p1 = static_cast<std::uint8_t*>(a.allocate(10, 8));
  auto* p2 = static_cast<std::uint8_t*>(a.allocate(10, 8));
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p2, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p1) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p2) % 8, 0u);
  EXPECT_GE(p2, p1 + 10);  // same chunk, bumped past the first block

  std::memset(p1, 0xaa, 10);
  std::memset(p2, 0x55, 10);
  EXPECT_EQ(p1[9], 0xaa);
  EXPECT_EQ(p2[0], 0x55);
}

TEST(Arena, GrowsByChunksAndTakesOversizeBlocks) {
  Arena a(128);
  EXPECT_EQ(a.chunk_count(), 0u);
  a.allocate(100);
  EXPECT_EQ(a.chunk_count(), 1u);
  a.allocate(100);  // does not fit the 128-byte chunk remainder
  EXPECT_EQ(a.chunk_count(), 2u);
  auto* big = a.allocate(1000);  // oversize: dedicated chunk of 1000
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(a.chunk_count(), 3u);
  EXPECT_GE(a.reserved_bytes(), 128u + 128u + 1000u);
}

TEST(Arena, ResetRecyclesChunksInsteadOfGrowing) {
  Arena a(256);
  a.allocate(200);
  a.allocate(200);
  const std::size_t reserved = a.reserved_bytes();
  const std::size_t chunks = a.chunk_count();
  for (int i = 0; i < 10; ++i) {
    a.reset();
    a.allocate(200);
    a.allocate(200);
  }
  EXPECT_EQ(a.reserved_bytes(), reserved);
  EXPECT_EQ(a.chunk_count(), chunks);
  EXPECT_EQ(a.generation(), 10u);
}

TEST(Arena, ResetReusesTheSameStorage) {
  Arena a(256);
  auto* p1 = a.allocate(64, 8);
  a.reset();
  auto* p2 = a.allocate(64, 8);
  EXPECT_EQ(p1, p2);
}

TEST(ArenaBackedStore, MatchesHeapBackedStore) {
  Arena arena;
  mem::BackingStore heap_store;
  mem::BackingStore arena_store;
  arena_store.set_arena(&arena);

  // Writes spanning several pages, including a page-straddling access.
  for (addr_t a = 0; a < 4 * mem::BackingStore::kPageBytes; a += 1000) {
    heap_store.store_u64(a, a * 0x9e3779b97f4a7c15ull);
    arena_store.store_u64(a, a * 0x9e3779b97f4a7c15ull);
  }
  for (addr_t a = 0; a < 4 * mem::BackingStore::kPageBytes; a += 1000) {
    EXPECT_EQ(arena_store.load_u64(a), heap_store.load_u64(a));
  }
  // Unallocated reads still return zero.
  EXPECT_EQ(arena_store.load_u64(1u << 30), 0u);
  EXPECT_EQ(arena_store.allocated_pages(), heap_store.allocated_pages());
  EXPECT_GE(arena.reserved_bytes(),
            arena_store.allocated_pages() * mem::BackingStore::kPageBytes);
}

}  // namespace
}  // namespace issr
