// Differential fuzz harness for the compiled-execution tier
// (core/compile.hpp): seeded random programs — RV32I ALU/branch/memory
// mixes, FP blocks, FREP loops with stagger, SSR/ISSR stream jobs,
// boundary-adjacent branches — run once compiled and once interpreted,
// asserting bitwise-equal cycle counts, statistic counters, stall
// buckets, register files, and memory images. Every divergence prints
// the seed so the exact program replays under a debugger.
//
// The generator is a pure function of the seed (common/rng.hpp xoshiro,
// deterministic across platforms), so a CI failure line like
// "seed 137" reproduces locally with no corpus files.
//
// Constraints the generator honors (model-defined limits, each pinned
// by its own targeted test elsewhere):
//  - FREP does not nest (fpss.cpp asserts); back-to-back FREPs are fine.
//  - fld into a stream register (ft0/ft1) is unsupported.
//  - Stream jobs are consumed exactly: pops == configured count, so
//    every program terminates and the final sync cannot wedge.
#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/sim.hpp"
#include "isa/assembler.hpp"
#include "kernels/kargs.hpp"
#include "sparse/fiber.hpp"

namespace issr::core {
namespace {

using namespace issr::isa;

constexpr std::size_t kDataElems = 64;    ///< streamable doubles
constexpr std::size_t kIdxElems = 48;     ///< indirection indices
constexpr std::size_t kScratchSlots = 64; ///< load/store u64 slots

// Clobberable integer registers. Excludes t5/t6 (scratch of the
// kernels::emit_* helpers), s10/s11 (pinned base pointers below), and
// the counter set (next).
constexpr Xreg kXPool[] = {kT1, kT2, kS0, kS1, kA0, kA1, kA2, kA3,
                           kA4, kA5, kA6, kA7, kS2, kS3, kS4, kS5,
                           kS6, kS7};
// Loop/FREP trip counters. Loads and FPSS integer writebacks land in
// their destination register cycles after issue and the model lets the
// late writeback win a WAW race — so a counter clobbered mid-loop by a
// stale load never reaches zero. Counters therefore come from a set the
// generator never uses as a load or FPSS-comparison destination.
constexpr Xreg kXCounters[] = {kT0, kT3, kT4, kS8};
constexpr Xreg kScratchBase = kS10;  ///< holds the scratch block address
constexpr Xreg kDataBase = kS11;     ///< holds the staged-data address

// Clobberable FP registers. Excludes ft0/ft1 (stream registers),
// ft2..ft5 (stream-FREP stagger accumulators), and f24..f31 (plain-FREP
// stagger window) so staggered operand fields never wrap onto a stream
// register.
constexpr Freg kFPool[] = {kFt6, kFt7, kFs0, kFs1, kFa0, kFa1, kFa2, kFa3,
                           kFa4, kFa5, kFa6, kFa7, kFs2, kFs3, kFs4, kFs5};
constexpr unsigned kFrepWindowBase = 24;  ///< f24..f31: staggered bodies

/// Segment-mix profiles: every profile can draw every segment kind, the
/// weights just concentrate coverage (stream-heavy seeds spend their
/// cycles in the fused steady-state loop, branch-heavy seeds in the
/// block-boundary seams).
enum class Profile { kMixed, kStreamHeavy, kFrepHeavy, kBranchHeavy };

template <typename T, std::size_t N>
T pick(Rng& rng, const T (&pool)[N]) {
  return pool[rng.uniform_int(0, N - 1)];
}

Xreg pick_x(Rng& rng) { return pick(rng, kXPool); }
Xreg pick_counter(Rng& rng) { return pick(rng, kXCounters); }
Freg pick_f(Rng& rng) { return pick(rng, kFPool); }

/// One random register-to-register ALU op, rd constrained to differ
/// from `avoid` (loop counters must survive their loop body).
void emit_alu_op(Rng& rng, Assembler& a, Xreg avoid) {
  Xreg rd = pick_x(rng);
  while (rd == avoid) rd = pick_x(rng);
  const Xreg rs1 = pick_x(rng);
  const Xreg rs2 = pick_x(rng);
  const auto imm = static_cast<std::int32_t>(rng.uniform_int(0, 4095)) - 2048;
  switch (rng.uniform_int(0, 15)) {
    case 0: a.add(rd, rs1, rs2); break;
    case 1: a.sub(rd, rs1, rs2); break;
    case 2: a.xor_(rd, rs1, rs2); break;
    case 3: a.or_(rd, rs1, rs2); break;
    case 4: a.and_(rd, rs1, rs2); break;
    case 5: a.sll(rd, rs1, rs2); break;
    case 6: a.srl(rd, rs1, rs2); break;
    case 7: a.sra(rd, rs1, rs2); break;
    case 8: a.slt(rd, rs1, rs2); break;
    case 9: a.sltu(rd, rs1, rs2); break;
    case 10: a.addi(rd, rs1, imm); break;
    case 11: a.xori(rd, rs1, imm); break;
    case 12: a.slli(rd, rs1, static_cast<unsigned>(rng.uniform_int(0, 63))); break;
    case 13: a.mul(rd, rs1, rs2); break;
    case 14: a.div(rd, rs1, rs2); break;  // div-by-zero is defined (-1)
    default: a.remu(rd, rs1, rs2); break;
  }
}

/// One random FP compute op on the pool registers (no loads/stores).
void emit_fp_op(Rng& rng, Assembler& a) {
  const Freg rd = pick_f(rng);
  const Freg rs1 = pick_f(rng);
  const Freg rs2 = pick_f(rng);
  const Freg rs3 = pick_f(rng);
  switch (rng.uniform_int(0, 9)) {
    case 0: a.fadd_d(rd, rs1, rs2); break;
    case 1: a.fsub_d(rd, rs1, rs2); break;
    case 2: a.fmul_d(rd, rs1, rs2); break;
    case 3: a.fmadd_d(rd, rs1, rs2, rs3); break;
    case 4: a.fnmsub_d(rd, rs1, rs2, rs3); break;
    case 5: a.fsgnjx_d(rd, rs1, rs2); break;
    case 6: a.fmin_d(rd, rs1, rs2); break;
    case 7: a.fmax_d(rd, rs1, rs2); break;
    case 8: a.fdiv_d(rd, rs1, rs2); break;  // iterative unit
    default: a.fmsub_d(rd, rs1, rs2, rs3); break;
  }
}

/// Ops crossing the core/FPSS boundary with an integer operand or an
/// integer result — the compiled tier's straight-line micro-op dispatch
/// must fall back to the generic path for these.
void emit_fp_cross_op(Rng& rng, Assembler& a) {
  const Freg f = pick_f(rng);
  const Xreg x = pick_x(rng);
  switch (rng.uniform_int(0, 5)) {
    case 0: a.fcvt_d_w(f, x); break;
    case 1: a.fmv_d_x(f, x); break;
    case 2: a.fmv_x_d(x, f); break;
    case 3: a.fcvt_w_d(x, f); break;
    case 4: a.feq_d(x, f, pick_f(rng)); break;
    default: a.fle_d(x, f, pick_f(rng)); break;
  }
}

/// Aligned load/store pair against the scratch block.
void emit_mem_op(Rng& rng, Assembler& a) {
  const auto slot = static_cast<std::int32_t>(
      rng.uniform_int(0, kScratchSlots - 1) * 8);
  const Xreg r = pick_x(rng);
  switch (rng.uniform_int(0, 7)) {
    case 0: a.sd(r, kScratchBase, slot); break;
    case 1: a.sw(r, kScratchBase, slot + 4); break;
    case 2: a.sh(r, kScratchBase, slot + 2); break;
    case 3: a.sb(r, kScratchBase, slot + static_cast<std::int32_t>(
                                             rng.uniform_int(0, 7))); break;
    case 4: a.ld(r, kScratchBase, slot); break;
    case 5: a.lwu(r, kScratchBase, slot + 4); break;
    case 6: a.lhu(r, kScratchBase, slot + 2); break;
    default: a.fld(pick_f(rng), kScratchBase, slot); break;
  }
  if (rng.uniform_int(0, 1) == 0) {
    a.fsd(pick_f(rng), kScratchBase,
          static_cast<std::int32_t>(rng.uniform_int(0, kScratchSlots - 1) * 8));
  }
}

/// Bounded counted loop: the taken-backward-branch seam, with the body
/// constrained to never clobber the counter.
void emit_loop(Rng& rng, Assembler& a) {
  const Xreg c = pick_counter(rng);
  a.li(c, static_cast<std::int64_t>(rng.uniform_int(1, 5)));
  const Label top = a.here();
  const unsigned body = static_cast<unsigned>(rng.uniform_int(1, 3));
  for (unsigned i = 0; i < body; ++i) emit_alu_op(rng, a, c);
  a.addi(c, c, -1);
  a.bne(c, kZero, top);
}

/// Forward conditional branch over 1..3 instructions — lands the
/// not-taken/taken paths directly adjacent to whatever the next segment
/// emits (FREP setup, stream CSR writes, or the final halt).
void emit_skip(Rng& rng, Assembler& a) {
  const Xreg r1 = pick_x(rng);
  const Xreg r2 = pick_x(rng);
  const Label skip = a.make_label();
  switch (rng.uniform_int(0, 3)) {
    case 0: a.beq(r1, r2, skip); break;
    case 1: a.bne(r1, r2, skip); break;
    case 2: a.blt(r1, r2, skip); break;
    default: a.bgeu(r1, r2, skip); break;
  }
  const unsigned skipped = static_cast<unsigned>(rng.uniform_int(1, 3));
  for (unsigned i = 0; i < skipped; ++i) {
    if (rng.uniform_int(0, 2) == 0) {
      emit_fp_op(rng, a);
    } else {
      emit_alu_op(rng, a, kZero);
    }
  }
  a.bind(skip);
}

/// FREP over a plain (non-streaming) FP body confined to the f24..f31
/// stagger window so staggered operand fields stay off the stream
/// registers. Memory operations inside FREP bodies are model-rejected
/// (fpss.cpp asserts), so bodies are pure FP compute.
void emit_frep(Rng& rng, Assembler& a) {
  const unsigned reps = static_cast<unsigned>(rng.uniform_int(1, 6));
  const unsigned insts = static_cast<unsigned>(rng.uniform_int(1, 4));
  const bool stagger = rng.uniform_int(0, 1) == 1;
  const unsigned max = stagger ? static_cast<unsigned>(rng.uniform_int(1, 3)) : 0;
  const unsigned mask = stagger ? static_cast<unsigned>(rng.uniform_int(1, 15)) : 0;
  const Xreg c = pick_counter(rng);
  a.li(c, reps - 1);
  a.frep(c, insts, max, mask);
  auto wreg = [&](void) -> Freg {
    return static_cast<Freg>(
        rng.uniform_int(kFrepWindowBase, 31 - max));
  };
  for (unsigned i = 0; i < insts; ++i) {
    switch (rng.uniform_int(0, 3)) {
      case 0: a.fmadd_d(wreg(), wreg(), wreg(), wreg()); break;
      case 1: a.fadd_d(wreg(), wreg(), wreg()); break;
      case 2: a.fmul_d(wreg(), wreg(), wreg()); break;
      default: a.fsgnjx_d(wreg(), wreg(), wreg()); break;
    }
  }
}

/// SSR/ISSR stream segment mirroring the paper kernels: an affine job on
/// lane 0 and optionally an indirection job on lane 1, consumed exactly
/// by a staggered FREP accumulation into ft2..ft5, then sync+disable.
void emit_stream(Rng& rng, Assembler& a, addr_t data, addr_t idcs,
                 sparse::IndexWidth width, addr_t scratch) {
  const auto n = rng.uniform_int(1, kIdxElems);
  const bool indirect = rng.uniform_int(0, 1) == 1;
  const bool write_back = !indirect && rng.uniform_int(0, 2) == 0;
  const unsigned n_acc = static_cast<unsigned>(rng.uniform_int(1, 4));

  if (write_back) {
    // Write stream: each architectural write to ft0 stores one element.
    kernels::emit_affine_job(a, 0, scratch, n, 8, /*write=*/true);
    kernels::emit_ssr_enable(a);
    a.li(kT0, static_cast<std::int64_t>(n - 1));
    a.frep(kT0, 1);
    a.fsgnj_d(kFt0, pick_f(rng), pick_f(rng));
    kernels::emit_sync_and_disable(a);
    return;
  }

  kernels::emit_affine_job(a, 0, data, n);
  if (indirect) {
    kernels::emit_indirect_job(a, 1, data, idcs, n, width);
  }
  kernels::emit_ssr_enable(a);
  a.li(kT0, static_cast<std::int64_t>(n - 1));
  a.frep(kT0, 1, n_acc - 1, kernels::kStaggerRdRs3);
  if (indirect) {
    a.fmadd_d(kFt2, kFt0, kFt1, kFt2);
  } else {
    a.fmadd_d(kFt2, kFt0, pick_f(rng), kFt2);
  }
  kernels::emit_sync_and_disable(a);
}

/// Everything one tier's run produced, down to register bit patterns.
struct TierRun {
  CcSimResult r;
  addr_t data = 0, idcs = 0, scratch = 0;
  std::array<std::uint64_t, 32> x{};
  std::array<std::uint64_t, 32> f{};
  std::vector<std::uint64_t> mem;
};

/// Build and run the seed's program under one tier. The generator's rng
/// stream never depends on `compiled`, so both tiers see the identical
/// program, staging layout, and configuration.
TierRun run_tier(std::uint64_t seed, Profile profile, bool compiled,
                 std::string* listing = nullptr) {
  Rng rng(seed);

  CcSimConfig cfg;
  cfg.compiled = compiled;
  cfg.fast_forward = rng.uniform_int(0, 3) > 0;
  const cycle_t lat[] = {1, 1, 1, 2, 4, 16};
  cfg.mem_latency = lat[rng.uniform_int(0, 5)];
  CcSim sim(cfg);

  TierRun t;
  std::vector<double> data(kDataElems);
  for (auto& d : data) d = rng.uniform(-4.0, 4.0);
  std::vector<std::uint32_t> idcs(kIdxElems);
  for (auto& i : idcs)
    i = static_cast<std::uint32_t>(rng.uniform_int(0, kDataElems - 1));
  const auto width = rng.uniform_int(0, 1) == 0 ? sparse::IndexWidth::kU16
                                                : sparse::IndexWidth::kU32;
  // The index base must be element-aligned (the serializer computes its
  // initial word offset as (idx_base - aligned_word) / elem_bytes); an
  // element-sized misalignment inside the 8-byte fetch word still
  // exercises the partial-first-word path.
  const unsigned elem_bytes = width == sparse::IndexWidth::kU16 ? 2u : 4u;
  const unsigned misalign =
      rng.uniform_int(0, 3) == 0 ? elem_bytes : 0;
  t.data = sim.stage(data);
  t.idcs = sim.stage_indices(idcs, width, misalign);
  t.scratch = sim.alloc(8 * kScratchSlots);

  Assembler a;
  a.li(kScratchBase, static_cast<std::int64_t>(t.scratch));
  a.li(kDataBase, static_cast<std::int64_t>(t.data));
  for (int i = 0; i < 6; ++i) {
    a.li(pick_x(rng), static_cast<std::int64_t>(rng.uniform_int(0, ~0ull)));
  }
  for (int i = 0; i < 4; ++i) {
    const Xreg x = pick_x(rng);
    a.li(x, static_cast<std::int64_t>(rng.uniform_int(0, 255)) - 128);
    a.fcvt_d_w(pick_f(rng), x);
  }
  a.fld(pick_f(rng), kDataBase, 0);
  for (unsigned f = 2; f <= 5; ++f) a.fzero(static_cast<Freg>(f));

  // Per-profile segment weights (indices into the switch below).
  const unsigned mixed[] = {0, 1, 2, 3, 4, 5, 6, 7};
  const unsigned stream[] = {6, 6, 6, 5, 2, 7, 0, 3};
  const unsigned frep[] = {5, 5, 5, 5, 2, 3, 1, 7};
  const unsigned branch[] = {1, 4, 4, 0, 2, 5, 1, 6};
  const unsigned* weights = profile == Profile::kStreamHeavy ? stream
                            : profile == Profile::kFrepHeavy ? frep
                            : profile == Profile::kBranchHeavy ? branch
                                                               : mixed;
  const unsigned nseg = static_cast<unsigned>(rng.uniform_int(4, 10));
  for (unsigned s = 0; s < nseg; ++s) {
    switch (weights[rng.uniform_int(0, 7)]) {
      case 0:
        for (int i = 0, n = static_cast<int>(rng.uniform_int(3, 8)); i < n; ++i)
          emit_alu_op(rng, a, kZero);
        break;
      case 1: emit_loop(rng, a); break;
      case 2: emit_mem_op(rng, a); break;
      case 3:
        for (int i = 0, n = static_cast<int>(rng.uniform_int(2, 6)); i < n; ++i) {
          if (rng.uniform_int(0, 2) == 0) {
            emit_fp_cross_op(rng, a);
          } else {
            emit_fp_op(rng, a);
          }
        }
        break;
      case 4: emit_skip(rng, a); break;
      case 5:
        emit_frep(rng, a);
        // Back-to-back FREPs: the second setup queues behind the
        // first replay and must not be skipped past by a block.
        if (rng.uniform_int(0, 2) == 0) emit_frep(rng, a);
        break;
      case 6: emit_stream(rng, a, t.data, t.idcs, width, t.scratch); break;
      default: kernels::emit_fpss_sync(a); break;
    }
  }
  // A boundary-adjacent branch over the final pre-halt instruction, then
  // the kernel epilogue idiom: sync, result store, sync, halt. The first
  // sync drains in-flight integer writebacks (fle/fcvt.w.d results) — a
  // halted core never pops them, so halting with one pending wedges the
  // CC (model-defined; real kernels always consume or sync).
  emit_skip(rng, a);
  kernels::emit_fpss_sync(a);
  a.fsd(pick_f(rng), kScratchBase, 8 * (kScratchSlots - 1));
  kernels::emit_fpss_sync(a);
  kernels::emit_halt(a);

  if (listing != nullptr) *listing = a.listing();
  sim.set_program(a.assemble());
  t.r = sim.run(2'000'000);

  for (unsigned i = 0; i < 32; ++i) {
    t.x[i] = sim.cc().core().xreg(i);
    t.f[i] = std::bit_cast<std::uint64_t>(sim.cc().fpss().freg(i));
  }
  t.mem.reserve(kDataElems + kScratchSlots);
  for (std::size_t i = 0; i < kDataElems; ++i)
    t.mem.push_back(sim.mem().load_u64(t.data + 8 * i));
  for (std::size_t i = 0; i < kScratchSlots; ++i)
    t.mem.push_back(sim.mem().load_u64(t.scratch + 8 * i));
  return t;
}

/// Run one seed under both tiers and demand bitwise identity of every
/// observable. The seed is in every failure message for replay.
void run_seed(std::uint64_t seed, Profile profile) {
  const TierRun c = run_tier(seed, profile, /*compiled=*/true);
  const TierRun i = run_tier(seed, profile, /*compiled=*/false);
  const std::string what = "seed " + std::to_string(seed);

  ASSERT_EQ(c.data, i.data) << what << " (staging nondeterminism)";
  ASSERT_EQ(c.scratch, i.scratch) << what << " (staging nondeterminism)";
  EXPECT_EQ(c.r.cycles, i.r.cycles) << what;
  EXPECT_EQ(c.r.aborted, i.r.aborted) << what;
  EXPECT_EQ(c.r.last_pc, i.r.last_pc) << what;
  EXPECT_EQ(c.r.fault.code, i.r.fault.code) << what;
  EXPECT_EQ(c.r.fault.cycle, i.r.fault.cycle) << what;
  EXPECT_EQ(c.r.core, i.r.core) << what << " (core stats)";
  EXPECT_EQ(c.r.fpss, i.r.fpss) << what << " (fpss stats)";
  EXPECT_EQ(c.r.ssr_lane, i.r.ssr_lane) << what << " (ssr lane stats)";
  EXPECT_EQ(c.r.issr_lane, i.r.issr_lane) << what << " (issr lane stats)";
  EXPECT_EQ(c.r.stalls, i.r.stalls) << what << " (stall buckets)";
  EXPECT_EQ(c.r.stalls.total(), c.r.cycles) << what << " (bucket sum)";
  std::string buckets;
  for (unsigned b = 0; b < trace::kNumBuckets; ++b) {
    buckets += std::string(" ") + trace::to_string(static_cast<trace::Bucket>(b)) +
               "=" + std::to_string(c.r.stalls.counts[b]);
  }
  EXPECT_FALSE(c.r.aborted) << what << " (generator emitted a wedged program)\n"
                            << c.r.fault.describe() << "\nlast_next_event="
                            << c.r.fault.last_next_event << "\nbuckets:" << buckets;
  for (unsigned r = 0; r < 32; ++r) {
    EXPECT_EQ(c.x[r], i.x[r]) << what << " " << xreg_name(r);
    EXPECT_EQ(c.f[r], i.f[r]) << what << " " << freg_name(r);
  }
  ASSERT_EQ(c.mem.size(), i.mem.size()) << what;
  for (std::size_t w = 0; w < c.mem.size(); ++w) {
    EXPECT_EQ(c.mem[w], i.mem[w]) << what << " mem word " << w;
  }
}

/// Seeds are partitioned across profiles so the suite covers both the
/// steady-state fused loop and the seam-dense shapes; ~200 total.
void run_range(std::uint64_t first, std::uint64_t last, Profile profile) {
  for (std::uint64_t seed = first; seed <= last; ++seed) {
    run_seed(seed, profile);
    if (::testing::Test::HasFailure()) {
      std::string listing;
      run_tier(seed, profile, /*compiled=*/false, &listing);
      FAIL() << "first failing seed: " << seed
             << " — replay by running this seed alone; program:\n"
             << listing;
    }
  }
}

TEST(CompiledDiff, MixedPrograms) { run_range(1, 80, Profile::kMixed); }

TEST(CompiledDiff, StreamHeavyPrograms) {
  run_range(1000, 1039, Profile::kStreamHeavy);
}

TEST(CompiledDiff, FrepHeavyPrograms) {
  run_range(2000, 2039, Profile::kFrepHeavy);
}

TEST(CompiledDiff, BranchHeavyPrograms) {
  run_range(3000, 3039, Profile::kBranchHeavy);
}

}  // namespace
}  // namespace issr::core
