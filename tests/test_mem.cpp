// Memory system tests: backing store, ideal ports, TCDM banking and
// arbitration, DMA transfers.
#include <gtest/gtest.h>

#include <cstring>
#include <optional>

#include "mem/backing_store.hpp"
#include "mem/dma.hpp"
#include "mem/ideal_mem.hpp"
#include "mem/interconnect.hpp"
#include "mem/main_mem.hpp"
#include "mem/tcdm.hpp"

namespace issr::mem {
namespace {

/// Optional-returning convenience over the in-place response slot.
std::optional<MemRsp> pop(MemPort& port) {
  MemRsp rsp;
  if (!port.pop_response(rsp)) return std::nullopt;
  return rsp;
}

TEST(BackingStore, TypedAccessRoundTrip) {
  BackingStore s;
  s.store_u8(5, 0xab);
  s.store_u16(100, 0x1234);
  s.store_u32(200, 0xdeadbeef);
  s.store_u64(300, 0x0123456789abcdefULL);
  s.store_f64(400, -3.25);
  EXPECT_EQ(s.load_u8(5), 0xab);
  EXPECT_EQ(s.load_u16(100), 0x1234);
  EXPECT_EQ(s.load_u32(200), 0xdeadbeefu);
  EXPECT_EQ(s.load_u64(300), 0x0123456789abcdefULL);
  EXPECT_EQ(s.load_f64(400), -3.25);
}

TEST(BackingStore, LittleEndianLayout) {
  BackingStore s;
  s.store_u32(0, 0x04030201);
  EXPECT_EQ(s.load_u8(0), 1);
  EXPECT_EQ(s.load_u8(3), 4);
}

TEST(BackingStore, UnallocatedReadsZero) {
  BackingStore s;
  EXPECT_EQ(s.load_u64(0x9999'0000), 0u);
  EXPECT_EQ(s.allocated_pages(), 0u);
}

TEST(BackingStore, CrossPageBlockOps) {
  BackingStore s;
  std::vector<std::uint8_t> data(10000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7);
  }
  const addr_t base = BackingStore::kPageBytes - 123;
  s.write_block(base, data.data(), data.size());
  std::vector<std::uint8_t> back(data.size());
  s.read_block(base, back.data(), back.size());
  EXPECT_EQ(back, data);
  EXPECT_GE(s.allocated_pages(), 3u);
}

TEST(BackingStore, UnalignedWideAccess) {
  BackingStore s;
  s.store_u64(3, 0x1122334455667788ULL);
  EXPECT_EQ(s.load_u64(3), 0x1122334455667788ULL);
  EXPECT_EQ(s.load_u8(3), 0x88);
}

TEST(IdealMemory, SingleRequestLatency) {
  IdealMemory mem(1, /*latency=*/1);
  mem.store().store_u64(0x40, 77);
  auto& port = mem.port(0);
  // Cycle 0: push request (requester phase).
  ASSERT_TRUE(port.can_accept());
  port.push_request({0x40, false, 8, 0, 9});
  EXPECT_FALSE(port.can_accept());
  EXPECT_FALSE(pop(port).has_value());
  // Cycle 1: memory grants; response pops in the same cycle's
  // requester phase (latency 1).
  mem.tick(1);
  EXPECT_TRUE(port.can_accept());
  const auto rsp = pop(port);
  ASSERT_TRUE(rsp.has_value());
  EXPECT_EQ(rsp->rdata, 77u);
  EXPECT_EQ(rsp->id, 9u);
}

TEST(IdealMemory, PipelinedThroughputOnePerCycle) {
  IdealMemory mem(1, 2);
  for (addr_t a = 0; a < 64; a += 8) mem.store().store_u64(a, a);
  auto& port = mem.port(0);
  unsigned received = 0;
  addr_t next = 0;
  for (cycle_t t = 0; t < 32; ++t) {
    mem.tick(t);
    while (auto rsp = pop(port)) {
      EXPECT_EQ(rsp->rdata, static_cast<std::uint64_t>(received * 8));
      ++received;
    }
    if (next < 64 && port.can_accept()) {
      port.push_request({next, false, 8, 0, 0});
      next += 8;
    }
  }
  EXPECT_EQ(received, 8u);
  // With latency 2 and full pipelining: 8 requests complete in ~10 cycles.
}

TEST(MemPortAdapter, VirtualSeamForwardsToConcretePort) {
  // The hot path is devirtualized; code that needs runtime polymorphism
  // over ports (mock memories, future backends) goes through the adapter.
  IdealMemory mem(1, 1);
  mem.store().store_u64(0x20, 123);
  MemPortAdapter adapter(mem.port(0));
  MemPortIface& iface = adapter;
  ASSERT_TRUE(iface.can_accept());
  iface.push_request({0x20, false, 8, 0, 3});
  EXPECT_FALSE(iface.can_accept());
  mem.tick(1);
  MemRsp rsp;
  ASSERT_TRUE(iface.pop_response(rsp));
  EXPECT_EQ(rsp.rdata, 123u);
  EXPECT_EQ(rsp.id, 3u);
  EXPECT_FALSE(iface.pop_response(rsp));
  EXPECT_EQ(iface.stats().reads, 1u);
}

TEST(IdealMemory, WritesCommitOnGrant) {
  IdealMemory mem(2, 1);
  mem.port(0).push_request({0x10, true, 8, 0xfeed, 0});
  mem.tick(1);
  EXPECT_EQ(mem.store().load_u64(0x10), 0xfeedu);
  EXPECT_EQ(mem.port(0).stats().writes, 1u);
}

TEST(Tcdm, BankMappingWordInterleaved) {
  TcdmConfig cfg;
  Tcdm tcdm(cfg, 1);
  EXPECT_EQ(tcdm.bank_of(cfg.base + 0), 0u);
  EXPECT_EQ(tcdm.bank_of(cfg.base + 8), 1u);
  EXPECT_EQ(tcdm.bank_of(cfg.base + 8 * 31), 31u);
  EXPECT_EQ(tcdm.bank_of(cfg.base + 8 * 32), 0u);
  EXPECT_TRUE(tcdm.contains(cfg.base));
  EXPECT_TRUE(tcdm.contains(cfg.base + cfg.size_bytes() - 1));
  EXPECT_FALSE(tcdm.contains(cfg.base + cfg.size_bytes()));
}

TEST(Tcdm, ConflictSerializesSameBank) {
  TcdmConfig cfg;
  Tcdm tcdm(cfg, 2);
  tcdm.store().store_u64(cfg.base, 42);
  // Both masters target bank 0 in the same cycle.
  tcdm.port(0).push_request({cfg.base, false, 8, 0, 0});
  tcdm.port(1).push_request({cfg.base, false, 8, 0, 1});
  tcdm.tick(1);
  // Exactly one granted.
  const bool p0 = pop(tcdm.port(0)).has_value();
  const bool p1 = pop(tcdm.port(1)).has_value();
  EXPECT_NE(p0, p1);
  EXPECT_EQ(tcdm.stats().grants, 1u);
  EXPECT_EQ(tcdm.stats().conflicts, 1u);
  tcdm.tick(2);
  EXPECT_TRUE(pop(tcdm.port(p0 ? 1 : 0)).has_value());
}

TEST(Tcdm, DifferentBanksProceedInParallel) {
  TcdmConfig cfg;
  Tcdm tcdm(cfg, 2);
  tcdm.port(0).push_request({cfg.base, false, 8, 0, 0});
  tcdm.port(1).push_request({cfg.base + 8, false, 8, 0, 1});
  tcdm.tick(1);
  EXPECT_TRUE(pop(tcdm.port(0)).has_value());
  EXPECT_TRUE(pop(tcdm.port(1)).has_value());
  EXPECT_EQ(tcdm.stats().conflicts, 0u);
}

TEST(Tcdm, RoundRobinIsFairUnderPersistentConflict) {
  TcdmConfig cfg;
  Tcdm tcdm(cfg, 2);
  unsigned grants[2] = {0, 0};
  for (cycle_t t = 1; t <= 40; ++t) {
    for (unsigned m = 0; m < 2; ++m) {
      if (tcdm.port(m).can_accept()) {
        tcdm.port(m).push_request({cfg.base, false, 8, 0, m});
      }
    }
    tcdm.tick(t);
    for (unsigned m = 0; m < 2; ++m) {
      if (pop(tcdm.port(m))) ++grants[m];
    }
  }
  EXPECT_NEAR(static_cast<double>(grants[0]), static_cast<double>(grants[1]),
              2.0);
}

TEST(Tcdm, DmaClaimBlocksBank) {
  TcdmConfig cfg;
  Tcdm tcdm(cfg, 1);
  tcdm.port(0).push_request({cfg.base, false, 8, 0, 0});
  tcdm.claim_for_dma(0, 1);
  tcdm.tick(1);
  EXPECT_FALSE(pop(tcdm.port(0)).has_value());
  // Claim is per-cycle: next tick the core wins.
  tcdm.tick(2);
  EXPECT_TRUE(pop(tcdm.port(0)).has_value());
}

class DmaTransfer : public ::testing::Test {
 protected:
  DmaTransfer() : tcdm_(TcdmConfig{}, 1), dma_(tcdm_, main_) {}

  void run_until_idle() {
    cycle_t t = 0;
    while (dma_.busy()) {
      dma_.tick(t);
      tcdm_.tick(t);
      ++t;
      ASSERT_LT(t, 100000u);
    }
  }

  Tcdm tcdm_;
  MainMemory main_;
  Dma dma_;
};

TEST_F(DmaTransfer, Copies1dMainToTcdm) {
  std::vector<std::uint8_t> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  main_.store().write_block(MainMemory::kBase + 7, data.data(), data.size());
  dma_.start_1d(tcdm_.config().base + 3, MainMemory::kBase + 7, data.size());
  run_until_idle();
  std::vector<std::uint8_t> back(data.size());
  tcdm_.store().read_block(tcdm_.config().base + 3, back.data(), back.size());
  EXPECT_EQ(back, data);
  EXPECT_EQ(main_.bytes_read(), data.size());
  EXPECT_EQ(dma_.completed_in(), 1u);
}

TEST_F(DmaTransfer, Copies2dWithStrides) {
  // 4 rows of 16 bytes, source stride 32 (picking every other row).
  for (unsigned r = 0; r < 4; ++r) {
    for (unsigned b = 0; b < 16; ++b) {
      main_.store().store_u8(MainMemory::kBase + r * 32 + b,
                             static_cast<std::uint8_t>(r * 100 + b));
    }
  }
  dma_.start_2d(tcdm_.config().base, MainMemory::kBase, 16, 4, 16, 32);
  run_until_idle();
  for (unsigned r = 0; r < 4; ++r) {
    for (unsigned b = 0; b < 16; ++b) {
      EXPECT_EQ(tcdm_.store().load_u8(tcdm_.config().base + r * 16 + b),
                static_cast<std::uint8_t>(r * 100 + b));
    }
  }
}

TEST_F(DmaTransfer, DuplexChannelsOverlap) {
  // One inbound and one outbound job of equal size run concurrently: the
  // total completes in ~bytes/64 cycles, not 2x.
  const std::uint64_t bytes = 6400;
  dma_.start_1d(tcdm_.config().base, MainMemory::kBase, bytes);
  dma_.start_1d(MainMemory::kBase + 0x100000, tcdm_.config().base + 0x8000,
                bytes);
  cycle_t t = 0;
  while (dma_.busy()) {
    dma_.tick(t);
    tcdm_.tick(t);
    ++t;
    ASSERT_LT(t, 10000u);
  }
  EXPECT_LE(t, bytes / 64 + 4);
  EXPECT_EQ(dma_.completed_in(), 1u);
  EXPECT_EQ(dma_.completed_out(), 1u);
}

TEST_F(DmaTransfer, ZeroByteJobCompletesImmediately) {
  dma_.start_1d(tcdm_.config().base, MainMemory::kBase, 0);
  dma_.tick(0);
  EXPECT_FALSE(dma_.busy());
  EXPECT_EQ(dma_.completed_jobs(), 1u);
}

// --- Cluster-to-memory interconnect ------------------------------------------

TEST(Interconnect, LinksArePerClusterAndPerDirection) {
  InterconnectConfig cfg;
  cfg.num_clusters = 2;
  cfg.link_beats_per_cycle = 1;
  cfg.bank_groups = 0;  // isolate the link stage
  Interconnect noc(cfg);
  noc.begin_cycle(0);
  // Each cluster owns a duplex link: cluster 0 exhausting its ingress
  // budget blocks neither its own egress nor cluster 1's ingress.
  EXPECT_TRUE(noc.try_beat(0, Interconnect::Dir::kIngress, 0, 0));
  EXPECT_FALSE(noc.try_beat(0, Interconnect::Dir::kIngress, 64, 0));
  EXPECT_TRUE(noc.try_beat(0, Interconnect::Dir::kEgress, 128, 0));
  EXPECT_TRUE(noc.try_beat(1, Interconnect::Dir::kIngress, 192, 0));
  // Budgets refill at the cycle boundary.
  noc.begin_cycle(1);
  EXPECT_TRUE(noc.try_beat(0, Interconnect::Dir::kIngress, 0, 1));
  EXPECT_EQ(noc.link_stats()[0].beats_in, 2u);
  EXPECT_EQ(noc.link_stats()[0].denied_in, 1u);
  EXPECT_EQ(noc.link_stats()[1].denied_in, 0u);
  EXPECT_EQ(noc.group_conflicts(), 0u);
}

TEST(Interconnect, BankGroupSerializesClustersSharingARegion) {
  InterconnectConfig cfg;
  cfg.num_clusters = 2;
  cfg.link_beats_per_cycle = 0;  // unlimited links: isolate the crossbar
  cfg.bank_groups = 8;
  cfg.group_beats_per_cycle = 1;
  Interconnect noc(cfg);
  noc.begin_cycle(0);
  // Both clusters touch addresses in bank group 0 (beat address / 64 mod
  // 8): the group serves one beat, the second cluster is denied and the
  // denial is attributed to the crossbar stage.
  EXPECT_EQ(noc.group_of(0), noc.group_of(512));
  EXPECT_TRUE(noc.try_beat(0, Interconnect::Dir::kIngress, 0, 0));
  EXPECT_FALSE(noc.try_beat(1, Interconnect::Dir::kIngress, 512, 0));
  EXPECT_EQ(noc.group_conflicts(), 1u);
  // A different group proceeds the same cycle.
  EXPECT_TRUE(noc.try_beat(1, Interconnect::Dir::kIngress, 64, 0));
}

TEST(Interconnect, LinkBeatBypassesCrossbarAndUnlimitedBypassesAll) {
  InterconnectConfig cfg;
  cfg.num_clusters = 1;
  cfg.link_beats_per_cycle = 1;
  cfg.bank_groups = 1;
  cfg.group_beats_per_cycle = 1;
  Interconnect noc(cfg);
  noc.begin_cycle(0);
  // A control message (work-queue claim) shares the link budget with
  // data beats but never consumes a bank-group slot.
  EXPECT_TRUE(noc.try_link_beat(0, Interconnect::Dir::kEgress, 0));
  EXPECT_FALSE(noc.try_beat(0, Interconnect::Dir::kEgress, 0, 0));
  noc.begin_cycle(1);
  EXPECT_TRUE(noc.try_beat(0, Interconnect::Dir::kEgress, 0, 1));
  EXPECT_FALSE(noc.try_link_beat(0, Interconnect::Dir::kEgress, 1));
  // Post-run harvest drain: every budget bypassed, nothing counted.
  const auto denied = noc.link_stats()[0].denied_out;
  noc.set_unlimited(true);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(noc.try_beat(0, Interconnect::Dir::kEgress, 0, 1));
  }
  EXPECT_EQ(noc.link_stats()[0].denied_out, denied);
  noc.set_unlimited(false);
}

}  // namespace
}  // namespace issr::mem
