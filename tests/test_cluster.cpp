// Cluster tests: the hardware barrier, multi-worker program execution,
// the tile planner's invariants, and end-to-end multicore CsrMV equality
// with the golden reference across variants and forced multi-tile runs.
#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/barrier.hpp"
#include "cluster/csrmv_mc.hpp"
#include "cluster/csrmv_shard.hpp"
#include "common/rng.hpp"
#include "isa/assembler.hpp"
#include "kernels/kargs.hpp"
#include "sparse/generate.hpp"
#include "sparse/reference.hpp"
#include "sparse/suite.hpp"

namespace issr::cluster {
namespace {

using namespace issr::isa;
using kernels::Variant;
using sparse::IndexWidth;

TEST(HwBarrier, ReleasesOnlyWhenAllArrive) {
  HwBarrier b(3);
  EXPECT_FALSE(b.poll(0));
  EXPECT_FALSE(b.poll(0));  // re-poll while waiting
  EXPECT_FALSE(b.poll(1));
  EXPECT_TRUE(b.poll(2));   // last arrival releases
  EXPECT_TRUE(b.poll(0));   // waiters now pass
  EXPECT_TRUE(b.poll(1));
  EXPECT_EQ(b.generation(), 1u);
}

TEST(HwBarrier, ReusableAcrossGenerations) {
  HwBarrier b(2);
  for (int gen = 0; gen < 5; ++gen) {
    EXPECT_FALSE(b.poll(0));
    EXPECT_TRUE(b.poll(1));
    EXPECT_TRUE(b.poll(0));
  }
  EXPECT_EQ(b.generation(), 5u);
}

TEST(Cluster, WorkersShareTcdmAndBarrier) {
  // Each worker writes its hartid to a slot, barriers, then sums all
  // slots; every worker must see every other worker's write.
  ClusterConfig cfg;
  const addr_t slots = cfg.tcdm.base;
  const addr_t sums = cfg.tcdm.base + 8 * 8;
  std::vector<isa::Program> programs;
  for (unsigned w = 0; w < cfg.num_workers; ++w) {
    Assembler a;
    a.csrrs(kT0, kCsrMhartid, kZero);
    a.li(kT1, static_cast<std::int64_t>(slots));
    a.slli(kT2, kT0, 3);
    a.add(kT1, kT1, kT2);
    a.sd(kT0, kT1, 0);
    kernels::emit_barrier(a);
    a.li(kT3, 0);  // sum
    a.li(kT4, static_cast<std::int64_t>(slots));
    for (unsigned i = 0; i < 8; ++i) {
      a.ld(kT5, kT4, static_cast<std::int32_t>(8 * i));
      a.add(kT3, kT3, kT5);
    }
    a.li(kT1, static_cast<std::int64_t>(sums));
    a.slli(kT2, kT0, 3);
    a.add(kT1, kT1, kT2);
    a.sd(kT3, kT1, 0);
    kernels::emit_halt(a);
    programs.push_back(a.assemble());
  }
  Cluster cluster(cfg, std::move(programs));
  const auto result = cluster.run(1'000'000);
  EXPECT_GT(result.cycles, 0u);
  for (unsigned w = 0; w < 8; ++w) {
    EXPECT_EQ(cluster.tcdm().store().load_u64(sums + 8 * w), 28u)
        << "worker " << w;
  }
}

TEST(TilePlan, CoversAllRowsWithoutOverlap) {
  Rng rng(1000);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 500, 256, 20);
  McCsrmvConfig cfg;
  cfg.max_tile_rows = 64;
  const auto plan = plan_tiles(a, cfg);
  ASSERT_FALSE(plan.tiles.empty());
  EXPECT_EQ(plan.tiles.front().row_begin, 0u);
  EXPECT_EQ(plan.tiles.back().row_end, a.rows());
  for (std::size_t t = 0; t < plan.tiles.size(); ++t) {
    const auto& tile = plan.tiles[t];
    EXPECT_LT(tile.row_begin, tile.row_end);
    EXPECT_LE(tile.row_end - tile.row_begin, cfg.max_tile_rows);
    EXPECT_LE(tile.nnz_end - tile.nnz_begin, plan.tile_nnz_capacity);
    EXPECT_EQ(tile.nnz_begin, a.ptr()[tile.row_begin]);
    EXPECT_EQ(tile.nnz_end, a.ptr()[tile.row_end]);
    if (t > 0) {
      EXPECT_EQ(plan.tiles[t - 1].row_end, tile.row_begin);
    }
  }
}

TEST(TilePlan, BuffersFitTcdm) {
  Rng rng(1001);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 100, 2048, 30);
  McCsrmvConfig cfg;
  const auto plan = plan_tiles(a, cfg);
  const auto& tcdm = cfg.cluster.tcdm;
  const unsigned iw = sparse::index_bytes(cfg.width);
  for (const auto& buf : plan.buf) {
    EXPECT_GE(buf.ptr_addr, tcdm.base);
    const addr_t idcs_end =
        buf.idcs_addr + plan.tile_nnz_capacity * iw;
    EXPECT_LE(idcs_end, tcdm.base + tcdm.size_bytes());
  }
}

TEST(TilePlan, SplitRowsByCostBalancesSkewedRows) {
  Rng rng(1002);
  const auto a = sparse::powerlaw_matrix(rng, 256, 256, 12.0, 1.0);
  const unsigned workers = 8;
  const auto cut = cluster::split_rows_by_cost(a, 0, a.rows(), workers);
  // Contiguous cover of the range: monotone boundaries, first/last pinned.
  ASSERT_EQ(cut.size(), workers + 1);
  EXPECT_EQ(cut.front(), 0u);
  EXPECT_EQ(cut.back(), a.rows());
  for (unsigned w = 0; w < workers; ++w) EXPECT_LE(cut[w], cut[w + 1]);
  // Cost balance: no worker's share exceeds the ideal mean by more than
  // one row's cost (a boundary only moves in whole rows). An equal-rows
  // split of this power-law matrix would hand the hub-row worker several
  // times the mean.
  const auto cost = [&](std::uint32_t r0, std::uint32_t r1) {
    return (a.ptr()[r1] - a.ptr()[r0]) +
           cluster::kRowCostOverhead * (r1 - r0);
  };
  const std::uint64_t total = cost(0, a.rows());
  std::uint64_t max_row = 0;
  for (std::uint32_t r = 0; r < a.rows(); ++r) {
    max_row = std::max(max_row, cost(r, r + 1));
  }
  for (unsigned w = 0; w < workers; ++w) {
    EXPECT_LE(cost(cut[w], cut[w + 1]), total / workers + max_row) << w;
  }
  // Pure function: same inputs, same boundaries.
  EXPECT_EQ(cluster::split_rows_by_cost(a, 0, a.rows(), workers), cut);
}

struct McCase {
  Variant variant;
  IndexWidth width;
};

class ClusterCsrmv : public ::testing::TestWithParam<McCase> {};

TEST_P(ClusterCsrmv, MatchesReferenceSingleTile) {
  const auto [v, w] = GetParam();
  Rng rng(1100);
  const auto a = sparse::random_uniform_matrix(rng, 64, 128, 700);
  const auto x = sparse::random_dense_vector(rng, 128);
  McCsrmvConfig cfg;
  cfg.variant = v;
  cfg.width = w;
  const auto r = run_csrmv_multicore(a, x, cfg);
  EXPECT_EQ(r.plan.tiles.size(), 1u);
  EXPECT_TRUE(sparse::allclose(r.y, sparse::ref_csrmv(a, x), 1e-9, 1e-9));
}

TEST_P(ClusterCsrmv, MatchesReferenceForcedMultiTile) {
  const auto [v, w] = GetParam();
  Rng rng(1101);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 300, 96, 9);
  const auto x = sparse::random_dense_vector(rng, 96);
  McCsrmvConfig cfg;
  cfg.variant = v;
  cfg.width = w;
  cfg.max_tile_rows = 48;  // forces ~7 tiles
  const auto r = run_csrmv_multicore(a, x, cfg);
  EXPECT_GE(r.plan.tiles.size(), 6u);
  EXPECT_TRUE(sparse::allclose(r.y, sparse::ref_csrmv(a, x), 1e-9, 1e-9));
}

TEST_P(ClusterCsrmv, HandlesEmptyRowsAndFewRows) {
  const auto [v, w] = GetParam();
  Rng rng(1102);
  // Fewer rows than workers plus empty rows.
  sparse::CooMatrix coo(5, 40);
  coo.add(1, 3, 1.5);
  coo.add(1, 17, -2.0);
  coo.add(4, 0, 3.0);
  const auto a = sparse::CsrMatrix::from_coo(coo);
  const auto x = sparse::random_dense_vector(rng, 40);
  McCsrmvConfig cfg;
  cfg.variant = v;
  cfg.width = w;
  const auto r = run_csrmv_multicore(a, x, cfg);
  EXPECT_TRUE(sparse::allclose(r.y, sparse::ref_csrmv(a, x), 1e-9, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    Variants, ClusterCsrmv,
    ::testing::Values(McCase{Variant::kBase, IndexWidth::kU16},
                      McCase{Variant::kSsr, IndexWidth::kU32},
                      McCase{Variant::kIssr, IndexWidth::kU16},
                      McCase{Variant::kIssr, IndexWidth::kU32}),
    [](const auto& info) {
      std::string name = kernels::to_string(info.param.variant);
      name += info.param.width == IndexWidth::kU16 ? "_u16" : "_u32";
      return name;
    });

TEST(ClusterCsrmvPerf, IssrBeatsBaseAtModerateDensity) {
  Rng rng(1200);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 256, 256, 32);
  const auto x = sparse::random_dense_vector(rng, 256);
  McCsrmvConfig base_cfg;
  base_cfg.variant = Variant::kBase;
  McCsrmvConfig issr_cfg;
  issr_cfg.variant = Variant::kIssr;
  const auto base = run_csrmv_multicore(a, x, base_cfg);
  const auto issr = run_csrmv_multicore(a, x, issr_cfg);
  const double speedup = static_cast<double>(base.cluster.cycles) /
                         static_cast<double>(issr.cluster.cycles);
  EXPECT_GT(speedup, 2.5);  // paper: >5x at nnz/row>50; 32/row lands lower
  EXPECT_LT(speedup, 7.2);
}

TEST(ClusterCsrmvPerf, BankConflictsReducePeakUtilization) {
  // The cluster's in-compute utilization must fall below the single-CC
  // ceiling of 0.8 but stay well above half of it (paper: 0.8 -> ~0.71).
  Rng rng(1201);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 96, 256, 96);
  const auto x = sparse::random_dense_vector(rng, 256);
  McCsrmvConfig cfg;
  cfg.variant = Variant::kIssr;
  const auto r = run_csrmv_multicore(a, x, cfg);
  EXPECT_GT(r.cluster.tcdm.conflicts, 0u);
  EXPECT_LT(r.cluster.fpu_util(), 0.8);
  EXPECT_GT(r.cluster.fpu_util(), 0.3);
}

TEST(ClusterCsrmvPerf, ScalesWithWorkerCount) {
  Rng rng(1203);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 128, 256, 48);
  const auto x = sparse::random_dense_vector(rng, 256);
  cycle_t prev = 0;
  for (const unsigned workers : {1u, 2u, 8u}) {
    McCsrmvConfig cfg;
    cfg.variant = Variant::kIssr;
    cfg.cluster.num_workers = workers;
    const auto r = run_csrmv_multicore(a, x, cfg);
    EXPECT_TRUE(sparse::allclose(r.y, sparse::ref_csrmv(a, x), 1e-9, 1e-9))
        << workers << " workers";
    if (prev != 0) {
      EXPECT_LT(r.cluster.cycles, prev);
    }
    prev = r.cluster.cycles;
  }
}

TEST(ClusterCsrmvPerf, DmaOverlapsComputeAcrossTiles) {
  // With many tiles, the double-buffered schedule must beat a serialized
  // (load + compute) bound.
  Rng rng(1202);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 512, 128, 24);
  const auto x = sparse::random_dense_vector(rng, 128);
  McCsrmvConfig cfg;
  cfg.variant = Variant::kIssr;
  cfg.max_tile_rows = 64;  // 8 tiles
  const auto r = run_csrmv_multicore(a, x, cfg);
  EXPECT_GE(r.plan.tiles.size(), 8u);
  EXPECT_TRUE(sparse::allclose(r.y, sparse::ref_csrmv(a, x), 1e-9, 1e-9));
  // DMA busy time must overlap compute: total cycles are well below the
  // sum of pure-DMA and pure-compute time.
  EXPECT_LT(r.cluster.cycles,
            r.cluster.dma.busy_cycles +
                static_cast<cycle_t>(static_cast<double>(a.nnz()) / 8 * 1.25) +
                4000);
}

}  // namespace
}  // namespace issr::cluster
