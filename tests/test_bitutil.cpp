#include <gtest/gtest.h>

#include <vector>

#include "common/bitutil.hpp"

namespace issr {
namespace {

TEST(BitUtil, BitsExtractsInclusiveRanges) {
  EXPECT_EQ(bits(0xdeadbeefULL, 31, 0), 0xdeadbeefULL);
  EXPECT_EQ(bits(0xdeadbeefULL, 15, 8), 0xbeULL);
  EXPECT_EQ(bits(0xdeadbeefULL, 3, 0), 0xfULL);
  EXPECT_EQ(bits(~0ULL, 63, 0), ~0ULL);
  EXPECT_EQ(bits(0x80000000'00000000ULL, 63, 63), 1ULL);
}

TEST(BitUtil, BitExtractsSingleBits) {
  EXPECT_EQ(bit(0b1010, 1), 1u);
  EXPECT_EQ(bit(0b1010, 0), 0u);
  EXPECT_EQ(bit(1ULL << 63, 63), 1u);
}

TEST(BitUtil, SignExtend) {
  EXPECT_EQ(sign_extend(0xff, 8), -1);
  EXPECT_EQ(sign_extend(0x7f, 8), 127);
  EXPECT_EQ(sign_extend(0x800, 12), -2048);
  EXPECT_EQ(sign_extend(0x7ff, 12), 2047);
  EXPECT_EQ(sign_extend(0xffffffff, 32), -1);
  EXPECT_EQ(sign_extend(5, 64), 5);
  EXPECT_EQ(sign_extend(~0ULL, 64), -1);
}

TEST(BitUtil, FitsSigned) {
  EXPECT_TRUE(fits_signed(2047, 12));
  EXPECT_FALSE(fits_signed(2048, 12));
  EXPECT_TRUE(fits_signed(-2048, 12));
  EXPECT_FALSE(fits_signed(-2049, 12));
  EXPECT_TRUE(fits_signed(0, 1));
  EXPECT_TRUE(fits_signed(-1, 1));
  EXPECT_FALSE(fits_signed(1, 1));
}

TEST(BitUtil, FitsUnsigned) {
  EXPECT_TRUE(fits_unsigned(255, 8));
  EXPECT_FALSE(fits_unsigned(256, 8));
  EXPECT_TRUE(fits_unsigned(~0ULL, 64));
}

TEST(BitUtil, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(48));
  EXPECT_EQ(log2_exact(1), 0u);
  EXPECT_EQ(log2_exact(4096), 12u);
  EXPECT_EQ(log2_ceil(1), 0u);
  EXPECT_EQ(log2_ceil(5), 3u);
  EXPECT_EQ(log2_ceil(8), 3u);
}

TEST(BitUtil, Alignment) {
  EXPECT_EQ(align_up(0, 8), 0u);
  EXPECT_EQ(align_up(1, 8), 8u);
  EXPECT_EQ(align_up(8, 8), 8u);
  EXPECT_EQ(align_down(15, 8), 8u);
  EXPECT_EQ(align_down(16, 8), 16u);
}

TEST(BitUtil, DivCeil) {
  EXPECT_EQ(div_ceil(0u, 4u), 0u);
  EXPECT_EQ(div_ceil(1u, 4u), 1u);
  EXPECT_EQ(div_ceil(4u, 4u), 1u);
  EXPECT_EQ(div_ceil(5u, 4u), 2u);
}

class SignExtendRoundTrip : public ::testing::TestWithParam<unsigned> {};

TEST_P(SignExtendRoundTrip, MaskThenExtendPreservesValue) {
  const unsigned width = GetParam();
  const std::int64_t lo = -(1ll << (width - 1));
  const std::int64_t hi = (1ll << (width - 1)) - 1;
  for (const std::int64_t v :
       std::vector<std::int64_t>{lo, lo + 1, -1, 0, 1, hi - 1, hi}) {
    const auto masked = static_cast<std::uint64_t>(v) & ((1ull << width) - 1);
    EXPECT_EQ(sign_extend(masked, width), v) << "width=" << width;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, SignExtendRoundTrip,
                         ::testing::Values(2u, 8u, 12u, 13u, 16u, 21u, 32u));

}  // namespace
}  // namespace issr
