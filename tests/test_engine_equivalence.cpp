// Fast-forward engine equivalence: the idle-cycle skip in CcSim::run /
// Cluster::run must be invisible in every observable — cycle counts, all
// statistic counters, stall-attribution buckets, simulated results,
// result-file bytes, and trace-file bytes. This suite runs the full
// scenario matrix (and targeted high-latency / cluster configurations
// where the skip engages heavily) through both engines and demands
// bitwise identity, plus proof that the fast path actually skipped.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "core/sim.hpp"
#include "driver/report.hpp"
#include "driver/runner.hpp"
#include "driver/runs.hpp"
#include "driver/scenario.hpp"
#include "isa/assembler.hpp"
#include "kernels/csrmv.hpp"
#include "kernels/kargs.hpp"
#include "kernels/spvv.hpp"
#include "sparse/generate.hpp"
#include "trace/chrome.hpp"
#include "trace/ring.hpp"

namespace issr {
namespace {

/// Toggle the process-wide engine default for one scope.
class ScopedFastForward {
 public:
  explicit ScopedFastForward(bool on)
      : prev_(core::engine_fast_forward_default()) {
    core::set_engine_fast_forward_default(on);
  }
  ~ScopedFastForward() { core::set_engine_fast_forward_default(prev_); }

 private:
  bool prev_;
};

void expect_cc_results_equal(const core::CcSimResult& fast,
                             const core::CcSimResult& ref,
                             const std::string& what) {
  EXPECT_EQ(fast.cycles, ref.cycles) << what;
  EXPECT_EQ(fast.aborted, ref.aborted) << what;
  EXPECT_EQ(fast.last_pc, ref.last_pc) << what;
  EXPECT_EQ(fast.core, ref.core) << what << " (core stats)";
  EXPECT_EQ(fast.fpss, ref.fpss) << what << " (fpss stats)";
  EXPECT_EQ(fast.ssr_lane, ref.ssr_lane) << what << " (ssr lane stats)";
  EXPECT_EQ(fast.issr_lane, ref.issr_lane) << what << " (issr lane stats)";
  EXPECT_EQ(fast.stalls, ref.stalls) << what << " (stall buckets)";
  EXPECT_EQ(fast.stalls.total(), fast.cycles) << what << " (bucket sum)";
}

/// The scenario matrix the equivalence sweep runs: every kernel, variant,
/// and width, single-CC and cluster, on workloads small enough to sweep
/// twice but large enough to stream, plus FREP-heavy epilogues.
std::vector<driver::Scenario> sweep_scenarios() {
  driver::ScenarioMatrix m;
  m.kernels = {driver::Kernel::kSpvv, driver::Kernel::kCsrmv};
  m.cores = {1, 2};
  m.rows = 48;
  m.cols = 96;
  return m.expand();
}

TEST(EngineEquivalence, ScenarioMatrixResultFilesAreBytewiseIdentical) {
  const auto scenarios = sweep_scenarios();
  ASSERT_FALSE(scenarios.empty());

  std::vector<driver::ScenarioResult> fast, ref;
  {
    ScopedFastForward ff(true);
    fast = driver::run_scenarios(scenarios, /*jobs=*/1, {});
  }
  {
    ScopedFastForward ff(false);
    ref = driver::run_scenarios(scenarios, /*jobs=*/1, {});
  }
  ASSERT_EQ(fast.size(), ref.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    const std::string what = scenarios[i].name();
    EXPECT_TRUE(fast[i].ok) << what;
    EXPECT_TRUE(ref[i].ok) << what;
    EXPECT_EQ(fast[i].cycles, ref[i].cycles) << what;
    EXPECT_EQ(fast[i].macs, ref[i].macs) << what;
    EXPECT_EQ(fast[i].nnz, ref[i].nnz) << what;
    EXPECT_EQ(fast[i].core_cycles, ref[i].core_cycles) << what;
    EXPECT_EQ(fast[i].stalls, ref[i].stalls) << what << " (stall buckets)";
  }
  // The files a sweep writes must match byte for byte.
  EXPECT_EQ(driver::results_to_json(fast), driver::results_to_json(ref));
  EXPECT_EQ(driver::results_to_csv(fast), driver::results_to_csv(ref));
}

TEST(EngineEquivalence, TracedRunsEmitIdenticalTraceBytes) {
  Rng rng(7);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 24, 48, 5);
  const auto x = sparse::random_dense_vector(rng, 48);

  std::string fast_json, ref_json;
  {
    ScopedFastForward ff(true);
    trace::RingBufferSink sink(1 << 16);
    const auto r = driver::run_csrmv_cc(kernels::Variant::kIssr,
                                        sparse::IndexWidth::kU16, a, x, &sink);
    EXPECT_TRUE(r.ok);
    fast_json = trace::to_chrome_json(sink);
  }
  {
    ScopedFastForward ff(false);
    trace::RingBufferSink sink(1 << 16);
    const auto r = driver::run_csrmv_cc(kernels::Variant::kIssr,
                                        sparse::IndexWidth::kU16, a, x, &sink);
    EXPECT_TRUE(r.ok);
    ref_json = trace::to_chrome_json(sink);
  }
  EXPECT_EQ(fast_json, ref_json);
}

/// High memory latency on the single-CC harness: long load-use and
/// FPU-drain stretches where the fast-forward engages heavily. A base
/// (non-streaming) CsrMV maximizes scalar load waits.
TEST(EngineEquivalence, HighLatencySingleCcSkipsAndMatches) {
  Rng rng(11);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 16, 64, 6);
  const auto x = sparse::random_dense_vector(rng, 64);

  for (const auto variant :
       {kernels::Variant::kBase, kernels::Variant::kSsr,
        kernels::Variant::kIssr}) {
    core::CcSimResult fast, ref;
    for (const bool ff : {true, false}) {
      core::CcSimConfig cfg;
      cfg.mem_latency = 16;
      cfg.fast_forward = ff;
      core::CcSim sim(cfg);
      kernels::CsrmvArgs args;
      args.ptr = sim.stage_u32(a.ptr());
      args.idcs = sim.stage_indices(a.idcs(), sparse::IndexWidth::kU16);
      args.vals = sim.stage(a.vals());
      args.nrows = a.rows();
      args.nnz = a.nnz();
      args.x = sim.stage(x);
      args.y = sim.alloc(8ull * a.rows());
      args.width = sparse::IndexWidth::kU16;
      sim.set_program(kernels::build_csrmv(variant, args));
      (ff ? fast : ref) = sim.run();
    }
    const std::string what =
        std::string("variant ") + kernels::to_string(variant);
    expect_cc_results_equal(fast, ref, what);
    EXPECT_EQ(ref.ff_skipped, 0u) << what;
    // The whole point: at latency 16 the fast engine must actually skip.
    EXPECT_GT(fast.ff_skipped, 0u) << what;
    EXPECT_LT(fast.ff_skipped, fast.cycles) << what;
  }
}

TEST(EngineEquivalence, ClusterRunMatchesAndInvariantsHold) {
  Rng rng(13);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 32, 64, 6);
  const auto x = sparse::random_dense_vector(rng, 64);

  driver::McRun fast, ref;
  {
    ScopedFastForward ff(true);
    fast = driver::run_csrmv_mc(kernels::Variant::kIssr,
                                sparse::IndexWidth::kU16, 2, a, x);
  }
  {
    ScopedFastForward ff(false);
    ref = driver::run_csrmv_mc(kernels::Variant::kIssr,
                               sparse::IndexWidth::kU16, 2, a, x);
  }
  EXPECT_TRUE(fast.ok);
  EXPECT_TRUE(ref.ok);
  EXPECT_EQ(fast.mc.cluster.cycles, ref.mc.cluster.cycles);
  EXPECT_EQ(ref.mc.cluster.ff_skipped, 0u);
  ASSERT_EQ(fast.mc.cluster.stalls.size(), ref.mc.cluster.stalls.size());
  for (std::size_t w = 0; w < fast.mc.cluster.stalls.size(); ++w) {
    EXPECT_EQ(fast.mc.cluster.stalls[w], ref.mc.cluster.stalls[w])
        << "worker " << w;
    EXPECT_EQ(fast.mc.cluster.stalls[w].total(), fast.mc.cluster.cycles)
        << "worker " << w << " bucket sum";
  }
  EXPECT_EQ(fast.mc.cluster.tcdm, ref.mc.cluster.tcdm);
  EXPECT_EQ(fast.mc.cluster.main_mem_read, ref.mc.cluster.main_mem_read);
  EXPECT_EQ(fast.mc.cluster.main_mem_written,
            ref.mc.cluster.main_mem_written);
  for (std::size_t i = 0; i < fast.mc.y.size(); ++i) {
    EXPECT_EQ(fast.mc.y[i], ref.mc.y[i]) << "y[" << i << "]";
  }
}

/// FPU pipeline drain: a chain of dependent fdiv operations leaves the
/// whole CC waiting on the iterative unit — the engine must skip those
/// scoreboard stretches and land on identical counters.
TEST(EngineEquivalence, IterativeFpuDrainSkipsAndMatches) {
  using namespace issr::isa;
  core::CcSimResult fast, ref;
  for (const bool ff : {true, false}) {
    core::CcSimConfig cfg;
    cfg.fast_forward = ff;
    core::CcSim sim(cfg);
    const addr_t out = sim.alloc(8);
    Assembler a;
    a.li(kT0, 9);
    a.fcvt_d_w(kFa1, kT0);
    a.li(kT0, 2);
    a.fcvt_d_w(kFa2, kT0);
    for (int i = 0; i < 4; ++i) a.fdiv_d(kFa1, kFa1, kFa2);
    a.li(kS2, static_cast<std::int64_t>(out));
    kernels::emit_fpss_sync(a);
    a.fsd(kFa1, kS2, 0);
    kernels::emit_fpss_sync(a);
    kernels::emit_halt(a);
    sim.set_program(a.assemble());
    (ff ? fast : ref) = sim.run();
  }
  expect_cc_results_equal(fast, ref, "fdiv drain");
  EXPECT_GT(fast.ff_skipped, 0u);
  EXPECT_EQ(ref.ff_skipped, 0u);
}

}  // namespace
}  // namespace issr
