// Format library tests: fibers, COO/CSR/CSC conversions, invariants, and
// round-trip properties on randomized matrices.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sparse/csc.hpp"
#include "sparse/csr.hpp"
#include "sparse/fiber.hpp"
#include "sparse/generate.hpp"

namespace issr::sparse {
namespace {

TEST(Fiber, DensifyRoundTrip) {
  SparseFiber f(8, {1.5, -2.0, 3.0}, {1, 4, 7});
  const DenseVector d = f.densify();
  EXPECT_EQ(d.size(), 8u);
  EXPECT_EQ(d[1], 1.5);
  EXPECT_EQ(d[4], -2.0);
  EXPECT_EQ(d[7], 3.0);
  EXPECT_EQ(d[0], 0.0);
  EXPECT_EQ(SparseFiber::from_dense(d), f);
}

TEST(Fiber, ValidityChecks) {
  EXPECT_TRUE(SparseFiber(4, {}, {}).valid());
  EXPECT_TRUE(SparseFiber(4, {1.0}, {3}).valid());
  SparseFiber f;
  EXPECT_TRUE(f.valid());
}

TEST(Fiber, Fits16Bit) {
  SparseFiber small(100, {1.0}, {99});
  EXPECT_TRUE(small.fits_u16());
  SparseFiber big(70000, {1.0, 2.0}, {5, 65536});
  EXPECT_FALSE(big.fits_u16());
}

class IndexPacking : public ::testing::TestWithParam<IndexWidth> {};

TEST_P(IndexPacking, RoundTripsThroughBytes) {
  const IndexWidth w = GetParam();
  Rng rng(11);
  const std::uint32_t limit = w == IndexWidth::kU16 ? 0xffffu : 0xffffffu;
  std::vector<std::uint32_t> idcs;
  for (int i = 0; i < 257; ++i) {
    idcs.push_back(static_cast<std::uint32_t>(rng.uniform_int(0, limit)));
  }
  const auto packed = pack_indices(idcs, w);
  EXPECT_EQ(packed.size(), idcs.size() * index_bytes(w));
  EXPECT_EQ(unpack_indices(packed, w, idcs.size()), idcs);
}

INSTANTIATE_TEST_SUITE_P(Widths, IndexPacking,
                         ::testing::Values(IndexWidth::kU16,
                                           IndexWidth::kU32));

TEST(Coo, CanonicalizeSortsAndMerges) {
  CooMatrix m(4, 4);
  m.add(2, 1, 1.0);
  m.add(0, 3, 2.0);
  m.add(2, 1, 0.5);
  m.add(0, 0, -1.0);
  m.canonicalize();
  ASSERT_EQ(m.nnz(), 3u);
  EXPECT_TRUE(m.canonical());
  EXPECT_EQ(m.entries()[0], (CooEntry{0, 0, -1.0}));
  EXPECT_EQ(m.entries()[1], (CooEntry{0, 3, 2.0}));
  EXPECT_EQ(m.entries()[2], (CooEntry{2, 1, 1.5}));
}

TEST(Coo, CanonicalizeDropsCancellationsOnRequest) {
  CooMatrix m(2, 2);
  m.add(1, 1, 2.0);
  m.add(1, 1, -2.0);
  m.canonicalize(/*drop_zeros=*/true);
  EXPECT_EQ(m.nnz(), 0u);
}

TEST(Csr, FromCooAndBack) {
  CooMatrix coo(3, 4);
  coo.add(0, 1, 1.0);
  coo.add(0, 3, 2.0);
  coo.add(2, 0, 3.0);
  const CsrMatrix csr = CsrMatrix::from_coo(coo);
  EXPECT_TRUE(csr.valid());
  EXPECT_EQ(csr.rows(), 3u);
  EXPECT_EQ(csr.cols(), 4u);
  EXPECT_EQ(csr.nnz(), 3u);
  EXPECT_EQ(csr.row_nnz(0), 2u);
  EXPECT_EQ(csr.row_nnz(1), 0u);  // empty row
  EXPECT_EQ(csr.row_nnz(2), 1u);

  CooMatrix back = csr.to_coo();
  back.canonicalize();
  CooMatrix canon = coo;
  canon.canonicalize();
  EXPECT_EQ(back.entries(), canon.entries());
}

TEST(Csr, RowFiberExtraction) {
  Rng rng(12);
  const auto a = random_fixed_row_nnz_matrix(rng, 10, 64, 5);
  for (std::uint32_t r = 0; r < a.rows(); ++r) {
    const auto f = a.row_fiber(r);
    EXPECT_TRUE(f.valid());
    EXPECT_EQ(f.nnz(), 5u);
    EXPECT_EQ(f.dim(), 64u);
  }
}

TEST(Csr, TransposeIsInvolution) {
  Rng rng(13);
  const auto a = random_uniform_matrix(rng, 37, 53, 200);
  const auto att = a.transposed().transposed();
  EXPECT_EQ(a, att);
}

TEST(Csr, TransposeMatchesDense) {
  Rng rng(14);
  const auto a = random_uniform_matrix(rng, 13, 17, 60);
  const auto t = a.transposed();
  const auto ad = a.densify();
  const auto td = t.densify();
  for (std::uint32_t r = 0; r < a.rows(); ++r)
    for (std::uint32_t c = 0; c < a.cols(); ++c)
      EXPECT_EQ(ad.at(r, c), td.at(c, r));
}

TEST(Csr, StorageBytes) {
  Rng rng(15);
  const auto a = random_uniform_matrix(rng, 10, 10, 20);
  EXPECT_EQ(a.storage_bytes(IndexWidth::kU32), 20u * 8 + 20u * 4 + 11u * 4);
  EXPECT_EQ(a.storage_bytes(IndexWidth::kU16), 20u * 8 + 20u * 2 + 11u * 4);
}

TEST(Csc, MatchesCsrSemantics) {
  Rng rng(16);
  const auto csr = random_uniform_matrix(rng, 23, 31, 150);
  const auto csc = CscMatrix::from_csr(csr);
  EXPECT_TRUE(csc.valid());
  EXPECT_EQ(csc.nnz(), csr.nnz());
  EXPECT_TRUE(allclose(DenseVector(std::vector<double>{}),
                       DenseVector(std::vector<double>{})));
  const auto a = csr.densify();
  const auto b = csc.densify();
  EXPECT_EQ(max_abs_diff(a, b), 0.0);
}

TEST(Csc, ColumnFiberMatchesDenseColumn) {
  Rng rng(17);
  const auto csr = random_uniform_matrix(rng, 20, 12, 80);
  const auto csc = CscMatrix::from_csr(csr);
  const auto d = csr.densify();
  for (std::uint32_t c = 0; c < csc.cols(); ++c) {
    const auto fiber = csc.col_fiber(c);
    const auto col = fiber.densify();
    for (std::uint32_t r = 0; r < csc.rows(); ++r) {
      EXPECT_EQ(col[r], d.at(r, c));
    }
  }
}

TEST(Csc, TransposeAsCsrSharesArrays) {
  Rng rng(18);
  const auto csr = random_uniform_matrix(rng, 9, 11, 30);
  const auto csc = CscMatrix::from_csr(csr);
  const auto t_csr = csc.transpose_as_csr();
  EXPECT_EQ(t_csr.densify().at(0, 0), csr.densify().at(0, 0));
  EXPECT_EQ(csc.to_csr(), csr);
}

TEST(Dense, MatrixStridesAndTranspose) {
  DenseMatrix m(2, 3, std::size_t{8});
  EXPECT_EQ(m.ld(), 8u);
  m.at(0, 0) = 1;
  m.at(1, 2) = 5;
  EXPECT_EQ(m.storage_elems(), 16u);
  const auto t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.at(2, 1), 5.0);
  const auto col = m.column(2);
  EXPECT_EQ(col[1], 5.0);
}

TEST(Dense, AllcloseToleratesSmallDifferences) {
  DenseVector a(std::vector<double>{1.0, 2.0});
  DenseVector b(std::vector<double>{1.0 + 1e-12, 2.0});
  EXPECT_TRUE(allclose(a, b));
  DenseVector c(std::vector<double>{1.5, 2.0});
  EXPECT_FALSE(allclose(a, c));
  DenseVector d(std::vector<double>{1.0});
  EXPECT_FALSE(allclose(a, d));
}

}  // namespace
}  // namespace issr::sparse
