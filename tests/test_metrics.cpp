// Metrics & observability tests: snapshot merge algebra (associative,
// commutative, gauge identity), harvest-time utilization invariants
// (every util_*/_frac/_rate gauge in [0,1]; util_fpu is bitwise the
// result's own fpu_util()), the results-v6 hard bar (result documents
// bytewise identical with host profiling and progress on or off, at any
// worker count), host-engine metrics accounting, Prometheus rendering,
// and the build-provenance pairing with the engine's runtime default.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/version.hpp"
#include "core/engine.hpp"
#include "driver/hostprof.hpp"
#include "driver/report.hpp"
#include "driver/runner.hpp"
#include "driver/sweep.hpp"
#include "metrics/harvest.hpp"
#include "metrics/metrics.hpp"
#include "metrics/prometheus.hpp"

namespace issr {
namespace {

using driver::Kernel;
using driver::Scenario;
using driver::ScenarioMatrix;
using driver::SweepOutcome;
using driver::SweepSpec;

/// Small mixed matrix covering every engine: single-CC SpVV, single-CC
/// CsrMV, cluster CsrMV, and a multi-cluster system run.
std::vector<Scenario> mixed_scenarios() {
  ScenarioMatrix m;
  m.kernels = {Kernel::kSpvv, Kernel::kCsrmv};
  m.variants = {kernels::Variant::kBase, kernels::Variant::kIssr};
  m.widths = {sparse::IndexWidth::kU16};
  m.densities = {0.1};
  m.cores = {1, 4};
  m.clusters = {1, 2};
  m.rows = 32;
  m.cols = 64;
  return m.expand();
}

SweepOutcome sweep(const std::vector<Scenario>& scenarios, unsigned jobs,
                   driver::HostProfiler* profiler = nullptr,
                   bool progress = false) {
  SweepSpec spec;
  spec.scenarios = scenarios;
  spec.jobs = jobs;
  spec.profiler = profiler;
  spec.progress = progress;
  return driver::run_sweep(spec);
}

// --- Snapshot merge algebra --------------------------------------------------

metrics::Snapshot snap_a() {
  metrics::Registry r;
  r.add("runs", 3);
  r.observe_max("peak", 7.0);
  r.observe_min("floor", 2.0);
  r.histogram("lat", 0.0, 100.0, 4);
  r.record("lat", 10.0);
  r.record("lat", 95.0);
  return r.snapshot();
}

metrics::Snapshot snap_b() {
  metrics::Registry r;
  r.add("runs", 5);
  r.add("extra", 1);
  r.observe_max("peak", 4.0);
  r.observe_min("floor", 9.0);
  r.histogram("lat", 0.0, 100.0, 4);
  r.record("lat", 50.0);
  return r.snapshot();
}

metrics::Snapshot snap_c() {
  metrics::Registry r;
  r.add("runs", 11);
  r.observe_max("peak", 6.0);
  // "floor" never observed here: the samples==0 gauge is the merge
  // identity, so merging it must not disturb b's minimum.
  r.gauge_min("floor");
  r.histogram("lat", 0.0, 100.0, 4);
  r.record("lat", -3.0);  // clamps into the low edge bin
  return r.snapshot();
}

void expect_same(const metrics::Snapshot& x, const metrics::Snapshot& y) {
  ASSERT_EQ(x.entries().size(), y.entries().size());
  for (std::size_t i = 0; i < x.entries().size(); ++i) {
    const auto& a = x.entries()[i];
    const auto& b = y.entries()[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.count, b.count);
    EXPECT_EQ(a.samples, b.samples);
    EXPECT_EQ(a.value, b.value);
    EXPECT_EQ(a.sum, b.sum);
    EXPECT_EQ(a.buckets, b.buckets);
  }
}

TEST(MetricsMerge, AssociativeAndCommutative) {
  // ((a+b)+c) == (a+(b+c)) == ((c+b)+a): counters and histogram buckets
  // are exact integer sums, gauges max/min — order cannot matter.
  metrics::Snapshot ab = snap_a();
  ab.merge(snap_b());
  metrics::Snapshot ab_c = ab;
  ab_c.merge(snap_c());

  metrics::Snapshot bc = snap_b();
  bc.merge(snap_c());
  metrics::Snapshot a_bc = snap_a();
  a_bc.merge(bc);

  metrics::Snapshot cb = snap_c();
  cb.merge(snap_b());
  cb.merge(snap_a());

  expect_same(ab_c, a_bc);
  expect_same(ab_c, cb);

  EXPECT_EQ(ab_c.value("runs"), 19.0);
  EXPECT_EQ(ab_c.value("extra"), 1.0);
  EXPECT_EQ(ab_c.value("peak"), 7.0);
  EXPECT_EQ(ab_c.value("floor"), 2.0);
  const metrics::Entry* lat = ab_c.find("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, 4u);
  ASSERT_EQ(lat->buckets.size(), 4u);
  EXPECT_EQ(lat->buckets[0], 2u);  // 10.0 and the clamped -3.0
  EXPECT_EQ(lat->buckets[2], 1u);  // 50.0
  EXPECT_EQ(lat->buckets[3], 1u);  // 95.0
}

TEST(MetricsMerge, EmptyGaugeIsIdentity) {
  metrics::Registry r;
  r.gauge_max("peak");  // created, never observed
  metrics::Snapshot with = snap_a();
  with.merge(r.snapshot());
  expect_same(with, snap_a());
}

TEST(MetricsSnapshot, AbsentNameReadsZero) {
  EXPECT_EQ(snap_a().value("no_such_metric"), 0.0);
}

TEST(MetricsFmt, CompactRoundTrip) {
  EXPECT_EQ(metrics::fmt_compact(0.05), "0.05");
  EXPECT_EQ(metrics::fmt_compact(0.0), "0");
  EXPECT_EQ(metrics::fmt_compact(1.0 / 3.0), "0.3333333333333333");
  EXPECT_EQ(std::strtod(metrics::fmt_compact(1.0 / 3.0).c_str(), nullptr),
            1.0 / 3.0);
}

// --- Harvest invariants ------------------------------------------------------

TEST(MetricsHarvest, UtilizationInvariantsHoldOnMixedSweep) {
  const auto outcome = sweep(mixed_scenarios(), 2);
  ASSERT_GE(outcome.results.size(), 6u);
  for (const auto& r : outcome.results) {
    SCOPED_TRACE(r.scenario.name());
    EXPECT_TRUE(r.ok);
    EXPECT_TRUE(metrics::utilization_in_bounds(r.metrics));
    // util_fpu is *defined* as the result's own fpu_util() — bitwise,
    // not approximately (the --perf-report/bench agreement bar).
    EXPECT_EQ(r.metrics.value("util_fpu"), r.fpu_util);
    EXPECT_GT(r.metrics.value("util_fpu"), 0.0);
    // Stall attribution still sums exactly to core-cycles.
    EXPECT_EQ(r.stalls.total(), r.core_cycles);
  }
}

// --- Result documents unperturbed by observability ---------------------------

TEST(MetricsDeterminism, ResultsBytewiseIdenticalWithProfilingOn) {
  const auto scenarios = mixed_scenarios();
  const auto reference = sweep(scenarios, 1);
  const std::string ref_json = driver::results_to_json(reference.results);
  const std::string ref_csv = driver::results_to_csv(reference.results);

  for (const unsigned jobs : {1u, 2u, 8u}) {
    driver::HostProfiler profiler;
    const auto got = sweep(scenarios, jobs, &profiler, /*progress=*/true);
    EXPECT_EQ(driver::results_to_json(got.results), ref_json)
        << "jobs=" << jobs;
    EXPECT_EQ(driver::results_to_csv(got.results), ref_csv)
        << "jobs=" << jobs;
    EXPECT_GT(profiler.recorded(), 0u);
  }
}

TEST(MetricsHost, SweepAccountingMatchesStats) {
  const auto scenarios = mixed_scenarios();
  for (const unsigned jobs : {1u, 3u}) {
    const auto outcome = sweep(scenarios, jobs);
    const auto& host = outcome.host_metrics;
    EXPECT_EQ(host.value("host_runs"),
              static_cast<double>(outcome.stats.runs));
    EXPECT_EQ(host.value("host_steals"),
              static_cast<double>(outcome.stats.steals));
    EXPECT_EQ(host.value("host_workload_builds"),
              static_cast<double>(outcome.stats.cache.workload_builds));
    EXPECT_GT(host.value("host_wall_seconds"), 0.0);
    EXPECT_GT(host.value("host_arena_reserved_bytes"), 0.0);
    const metrics::Entry* hist = host.find("host_run_us");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->count, outcome.stats.runs);
    ASSERT_EQ(outcome.run_seconds.size(), scenarios.size());
    for (const double s : outcome.run_seconds) EXPECT_GT(s, 0.0);
  }
}

// --- Host profiler -----------------------------------------------------------

TEST(HostProfiler, WritesChromeTrace) {
  namespace fs = std::filesystem;
  driver::HostProfiler prof;
  const auto track = prof.add_track("sweep", "worker 0");
  prof.begin(track, "csrmv/base");
  prof.end(track, "csrmv/base");
  prof.instant(track, "steal", 3);
  EXPECT_EQ(prof.recorded(), 3u);

  const fs::path path = fs::temp_directory_path() / "issr_hostprof_test.json";
  fs::remove(path);
  ASSERT_TRUE(prof.write(path.string()));
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string doc = ss.str();
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("csrmv/base"), std::string::npos);
  fs::remove(path);
}

// --- Prometheus rendering ----------------------------------------------------

TEST(Prometheus, RendersTypedLabeledSeries) {
  metrics::Registry r;
  r.add("runs", 2);
  r.observe_max("util fpu", 0.75);  // space must sanitize to '_'
  r.histogram("lat_us", 0.0, 10.0, 2);
  r.record("lat_us", 1.0);
  r.record("lat_us", 9.0);
  const auto snap = r.snapshot();

  const std::string text = metrics::to_prometheus(
      {{{{"scenario", "csrmv/issr w\"16\""}}, &snap}, {{}, &snap}});

  EXPECT_NE(text.find("# TYPE issr_runs counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE issr_util_fpu gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE issr_lat_us histogram"), std::string::npos);
  // Label values escape quotes; the unlabeled host series renders bare.
  EXPECT_NE(text.find("issr_runs{scenario=\"csrmv/issr w\\\"16\\\"\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("\nissr_runs 2\n"), std::string::npos);
  // Histogram triple with cumulative buckets and the +Inf catch-all.
  EXPECT_NE(text.find("issr_lat_us_bucket{le=\"5\"} 1"), std::string::npos);
  EXPECT_NE(text.find("issr_lat_us_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("issr_lat_us_sum 10"), std::string::npos);
  EXPECT_NE(text.find("issr_lat_us_count 2"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

// --- Results schema v6 -------------------------------------------------------

TEST(ResultsV6, CarriesEngineProvenanceAndMetrics) {
  auto scenarios = mixed_scenarios();
  scenarios.resize(2);
  const auto outcome = sweep(scenarios, 1);
  const std::string json = driver::results_to_json(outcome.results);
  EXPECT_NE(json.find("\"schema\": \"issr_run.results.v6\""),
            std::string::npos);
  EXPECT_NE(json.find("\"engine\""), std::string::npos);
  EXPECT_NE(json.find("\"build_type\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"util_fpu\""), std::string::npos);

  const std::string csv = driver::results_to_csv(outcome.results);
  const std::string header = csv.substr(0, csv.find('\n'));
  EXPECT_NE(header.find("util_fpu_fmadd"), std::string::npos);
  EXPECT_NE(header.find("barrier_wait_frac"), std::string::npos);
}

// --- Build provenance --------------------------------------------------------

TEST(Provenance, BuildFastForwardDefaultMatchesEngine) {
  // src/common/version.cpp hardcodes the compiled-in default (the
  // provenance header must not read runtime state — CI byte-diffs
  // results across --no-fast-forward); this is the pairing guard its
  // comment promises. If it fires, the engine's initializer changed
  // without updating engine_build_fast_forward_default().
  EXPECT_EQ(engine_build_fast_forward_default(),
            core::engine_fast_forward_default());
  EXPECT_FALSE(engine_version().empty());
  EXPECT_STRNE(engine_build_type(), "");
}

TEST(ResultsV6, PaperReferenceAnchors) {
  EXPECT_EQ(driver::paper_util_reference(kernels::Variant::kBase,
                                         sparse::IndexWidth::kU32),
            0.11);
  EXPECT_EQ(driver::paper_util_reference(kernels::Variant::kSsr,
                                         sparse::IndexWidth::kU32),
            0.14);
  EXPECT_EQ(driver::paper_util_reference(kernels::Variant::kIssr,
                                         sparse::IndexWidth::kU16),
            0.80);
  EXPECT_EQ(driver::paper_util_reference(kernels::Variant::kIssr,
                                         sparse::IndexWidth::kU32),
            0.67);
}

}  // namespace
}  // namespace issr
