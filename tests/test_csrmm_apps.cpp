// CsrMM, codebook, and scatter/gather kernel validation (§III-B, §III-C).
#include <gtest/gtest.h>

#include "common/bitutil.hpp"
#include "common/rng.hpp"
#include "core/sim.hpp"
#include "kernels/codebook.hpp"
#include "kernels/csrmm.hpp"
#include "kernels/scatter_gather.hpp"
#include "sparse/generate.hpp"
#include "sparse/reference.hpp"

namespace issr {
namespace {

using kernels::Variant;
using sparse::IndexWidth;

void check_csrmm(Variant variant, IndexWidth width,
                 const sparse::CsrMatrix& a, std::uint32_t b_cols,
                 std::uint32_t ldy_extra, std::uint64_t seed) {
  Rng rng(seed);
  const std::uint32_t ldb = std::max<std::uint32_t>(
      1u << log2_ceil(std::max<std::uint32_t>(b_cols, 1)), 1);
  const auto b = sparse::random_dense_matrix(rng, a.cols(), b_cols, ldb);
  const std::uint32_t ldy = b_cols + ldy_extra;

  core::CcSim sim;
  kernels::CsrmmArgs args;
  args.ptr = sim.stage_u32(a.ptr());
  args.idcs = sim.stage_indices(a.idcs(), width);
  args.vals = sim.stage(a.vals());
  args.nrows = a.rows();
  args.nnz = a.nnz();
  args.b = sim.alloc(8ull * std::max<std::size_t>(b.storage_elems(), 1));
  if (b.storage_elems() > 0) {
    sim.mem().write_doubles(args.b, b.data(), b.storage_elems());
  }
  args.b_cols = b_cols;
  args.ldb_log2 = log2_exact(ldb);
  args.y = sim.alloc(8ull * std::max<std::uint64_t>(
                                1, static_cast<std::uint64_t>(a.rows()) * ldy));
  args.ldy = ldy;
  args.width = width;
  sim.set_program(kernels::build_csrmm(variant, args));
  sim.run();

  const auto expect = sparse::ref_csrmm(a, b);
  for (std::uint32_t r = 0; r < a.rows(); ++r) {
    for (std::uint32_t c = 0; c < b_cols; ++c) {
      const double got =
          sim.read_f64(args.y + 8ull * (static_cast<std::uint64_t>(r) * ldy + c));
      EXPECT_NEAR(got, expect.at(r, c), 1e-9 + 1e-9 * std::abs(expect.at(r, c)))
          << kernels::to_string(variant) << " r=" << r << " c=" << c;
    }
  }
}

class CsrmmVariants : public ::testing::TestWithParam<Variant> {};

TEST_P(CsrmmVariants, SmallDenseOperand) {
  Rng rng(800);
  const auto a = sparse::random_uniform_matrix(rng, 13, 16, 60);
  check_csrmm(GetParam(), IndexWidth::kU32, a, 4, 0, 801);
}

TEST_P(CsrmmVariants, StridedResultMatrix) {
  Rng rng(802);
  const auto a = sparse::random_uniform_matrix(rng, 9, 8, 30);
  check_csrmm(GetParam(), IndexWidth::kU16, a, 3, 5, 803);
}

TEST_P(CsrmmVariants, SingleColumnReducesToCsrmv) {
  Rng rng(804);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 20, 16, 4);
  check_csrmm(GetParam(), IndexWidth::kU16, a, 1, 0, 805);
}

INSTANTIATE_TEST_SUITE_P(Variants, CsrmmVariants,
                         ::testing::Values(Variant::kBase, Variant::kSsr,
                                           Variant::kIssr),
                         [](const auto& info) {
                           return std::string(kernels::to_string(info.param));
                         });

TEST(CsrmmUtilization, TracksCsrmvOnTinyMatrix) {
  // §IV-A: CsrMM utilization within a fraction of a percent of CsrMV even
  // for a 64-nonzero matrix with a 2-column dense operand.
  Rng rng(806);
  const auto a = sparse::random_uniform_matrix(rng, 23, 23, 64);
  const auto x = sparse::random_dense_vector(rng, 23);

  core::CcSim mv_sim;
  kernels::CsrmvArgs mv;
  mv.ptr = mv_sim.stage_u32(a.ptr());
  mv.idcs = mv_sim.stage_indices(a.idcs(), IndexWidth::kU16);
  mv.vals = mv_sim.stage(a.vals());
  mv.nrows = a.rows();
  mv.nnz = a.nnz();
  mv.x = mv_sim.stage(x);
  mv.y = mv_sim.alloc(8ull * a.rows());
  mv.width = IndexWidth::kU16;
  mv_sim.set_program(kernels::build_csrmv(Variant::kIssr, mv));
  const auto mv_run = mv_sim.run();

  core::CcSim mm_sim;
  kernels::CsrmmArgs mm;
  mm.ptr = mm_sim.stage_u32(a.ptr());
  mm.idcs = mm_sim.stage_indices(a.idcs(), IndexWidth::kU16);
  mm.vals = mm_sim.stage(a.vals());
  mm.nrows = a.rows();
  mm.nnz = a.nnz();
  const std::uint32_t ldb = 32;
  Rng rng2(807);
  const auto b = sparse::random_dense_matrix(rng2, a.cols(), 2, ldb);
  mm.b = mm_sim.alloc(8ull * b.storage_elems());
  mm_sim.mem().write_doubles(mm.b, b.data(), b.storage_elems());
  mm.b_cols = 2;
  mm.ldb_log2 = 5;
  mm.y = mm_sim.alloc(8ull * a.rows() * 2);
  mm.ldy = 2;
  mm.width = IndexWidth::kU16;
  mm_sim.set_program(kernels::build_csrmm(Variant::kIssr, mm));
  const auto mm_run = mm_sim.run();

  EXPECT_NEAR(mm_run.fpu_util(), mv_run.fpu_util(),
              0.02 * mv_run.fpu_util() + 0.005);
}

class CodebookWidths : public ::testing::TestWithParam<IndexWidth> {};

TEST_P(CodebookWidths, DotProductMatchesReference) {
  const auto width = GetParam();
  Rng rng(900);
  for (const std::uint32_t count : {0u, 1u, 5u, 64u, 300u}) {
    const auto cb = sparse::random_codebook_vector(rng, count, 16);
    const auto b = sparse::random_dense_vector(rng, count);
    core::CcSim sim;
    kernels::CodebookDotArgs args;
    args.codebook = sim.stage(cb.codebook);
    args.codes = sim.stage_indices(cb.indices, width);
    args.count = count;
    args.b = sim.stage(b);
    args.result = sim.alloc(8);
    args.width = width;
    sim.set_program(kernels::build_codebook_dot(args));
    sim.run();
    const double expect = sparse::ref_codebook_dot(cb, b);
    EXPECT_NEAR(sim.read_f64(args.result), expect,
                1e-9 * (1 + std::abs(expect)))
        << "count " << count;
  }
}

TEST_P(CodebookWidths, ExpandDecodesInPlaceOrder) {
  const auto width = GetParam();
  Rng rng(901);
  const auto cb = sparse::random_codebook_vector(rng, 129, 8);
  core::CcSim sim;
  kernels::CodebookExpandArgs args;
  args.codebook = sim.stage(cb.codebook);
  args.codes = sim.stage_indices(cb.indices, width);
  args.count = 129;
  args.out = sim.alloc(8ull * 129);
  args.width = width;
  sim.set_program(kernels::build_codebook_expand(args));
  sim.run();
  const auto expect = cb.densify();
  const auto got = sparse::DenseVector(sim.read_f64s(args.out, 129));
  EXPECT_EQ(sparse::max_abs_diff(got, expect), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Widths, CodebookWidths,
                         ::testing::Values(IndexWidth::kU16,
                                           IndexWidth::kU32),
                         [](const auto& info) {
                           return info.param == IndexWidth::kU16 ? "u16"
                                                                 : "u32";
                         });

TEST(ScatterGather, GatherMatchesReference) {
  Rng rng(902);
  const auto src = sparse::random_dense_vector(rng, 200);
  std::vector<std::uint32_t> idcs;
  for (int i = 0; i < 77; ++i) {
    idcs.push_back(static_cast<std::uint32_t>(rng.uniform_int(0, 199)));
  }
  core::CcSim sim;
  kernels::GatherArgs args;
  args.src = sim.stage(src);
  args.idcs = sim.stage_indices(idcs, IndexWidth::kU32);
  args.count = 77;
  args.out = sim.alloc(8ull * 77);
  args.width = IndexWidth::kU32;
  sim.set_program(kernels::build_gather(args));
  sim.run();
  const auto expect = sparse::ref_gather(src, idcs);
  const auto got = sparse::DenseVector(sim.read_f64s(args.out, 77));
  EXPECT_EQ(sparse::max_abs_diff(got, expect), 0.0);
}

TEST(ScatterGather, ScatterDensifiesSparseFiber) {
  Rng rng(903);
  const auto fiber = sparse::random_sparse_vector(rng, 128, 40);
  core::CcSim sim;
  kernels::ScatterArgs args;
  args.src = sim.stage(fiber.vals());
  args.idcs = sim.stage_indices(fiber.idcs(), IndexWidth::kU16);
  args.count = fiber.nnz();
  args.dst = sim.alloc(8ull * 128);
  args.width = IndexWidth::kU16;
  sim.set_program(kernels::build_scatter(args));
  sim.run();
  const auto expect = fiber.densify();
  const auto got = sparse::DenseVector(sim.read_f64s(args.dst, 128));
  EXPECT_EQ(sparse::max_abs_diff(got, expect), 0.0);
}

TEST(ScatterGather, SparseAxpyAccumulatesOntoDense) {
  Rng rng(904);
  const auto fiber = sparse::random_sparse_vector(rng, 96, 30);
  const auto y0 = sparse::random_dense_vector(rng, 96);
  core::CcSim sim;
  kernels::SparseAxpyArgs args;
  args.vals = sim.stage(fiber.vals());
  args.idcs = sim.stage_indices(fiber.idcs(), IndexWidth::kU32);
  args.count = fiber.nnz();
  args.y = sim.stage(y0);
  args.scratch = sim.alloc(8ull * fiber.nnz());
  args.width = IndexWidth::kU32;
  sim.set_program(kernels::build_sparse_axpy(args));
  sim.run();
  auto expect = y0;
  sparse::ref_axpy_sparse_onto_dense(fiber, expect);
  const auto got = sparse::DenseVector(sim.read_f64s(args.y, 96));
  EXPECT_LT(sparse::max_abs_diff(got, expect), 1e-12);
}

TEST(ScatterGather, GatherThenScatterRestoresPermutation) {
  Rng rng(905);
  std::vector<std::uint32_t> perm(64);
  for (std::uint32_t i = 0; i < 64; ++i) perm[i] = i;
  rng.shuffle(perm);
  const auto src = sparse::random_dense_vector(rng, 64);

  core::CcSim sim;
  const addr_t src_a = sim.stage(src);
  const addr_t idcs_a = sim.stage_indices(perm, IndexWidth::kU16);
  const addr_t mid_a = sim.alloc(8ull * 64);
  const addr_t dst_a = sim.alloc(8ull * 64);

  kernels::GatherArgs g;
  g.src = src_a;
  g.idcs = idcs_a;
  g.count = 64;
  g.out = mid_a;
  g.width = IndexWidth::kU16;
  sim.set_program(kernels::build_gather(g));
  sim.run();

  // Scatter back with the same permutation in a fresh program on the same
  // memory image.
  kernels::ScatterArgs s;
  s.src = mid_a;
  s.idcs = idcs_a;
  s.count = 64;
  s.dst = dst_a;
  s.width = IndexWidth::kU16;
  sim.set_program(kernels::build_scatter(s));
  sim.run();

  const auto got = sparse::DenseVector(sim.read_f64s(dst_a, 64));
  EXPECT_EQ(sparse::max_abs_diff(got, src), 0.0);
}

}  // namespace
}  // namespace issr
