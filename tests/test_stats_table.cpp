#include <gtest/gtest.h>

#include <cstdio>

#include "common/stats.hpp"
#include "common/table.hpp"

namespace issr {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  s.add(3.0);
  EXPECT_EQ(s.mean(), 3.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);    // bin 0
  h.add(1.99);   // bin 0
  h.add(2.0);    // bin 1
  h.add(9.99);   // bin 4
  h.add(10.0);   // clamps to bin 4
  h.add(-5.0);   // clamps to bin 0
  h.add(100.0);  // clamps to bin 4
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.bin_count(0), 3u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(4), 3u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
  EXPECT_DOUBLE_EQ(percentile(v, 12.5), 1.5);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t;
  t.set_header({"a", "b"});
  t.add_row({"plain", "with,comma"});
  t.add_row({"with\"quote", "multi\nline"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("a,b\n"), std::string::npos);
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
  EXPECT_NE(csv.find("\"multi\nline\""), std::string::npos);
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt_f(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_pct(0.5, 1), "50.0%");
  EXPECT_EQ(fmt_u(1234), "1234");
  EXPECT_EQ(fmt_speedup(7.2, 1), "7.2x");
}

TEST(Table, RowAccessors) {
  Table t("title");
  t.set_header({"x", "y", "z"});
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.row(0)[2], "3");
}

}  // namespace
}  // namespace issr
