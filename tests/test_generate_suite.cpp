// Generator invariants and the synthetic SuiteSparse suite.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sparse/generate.hpp"
#include "sparse/reference.hpp"
#include "sparse/suite.hpp"

namespace issr::sparse {
namespace {

TEST(Generate, SparseVectorHasRequestedShape) {
  Rng rng(31);
  const auto f = random_sparse_vector(rng, 1000, 137);
  EXPECT_TRUE(f.valid());
  EXPECT_EQ(f.dim(), 1000u);
  EXPECT_EQ(f.nnz(), 137u);
}

TEST(Generate, UniformMatrixExactNnz) {
  Rng rng(32);
  for (const std::uint64_t nnz : {0ull, 1ull, 50ull, 500ull}) {
    const auto a = random_uniform_matrix(rng, 40, 40, nnz);
    EXPECT_TRUE(a.valid());
    EXPECT_EQ(a.nnz(), nnz);
  }
}

TEST(Generate, UniformMatrixDensePath) {
  Rng rng(33);
  // nnz*4 >= cells triggers the selection-sampling path.
  const auto a = random_uniform_matrix(rng, 16, 16, 200);
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a.nnz(), 200u);
}

TEST(Generate, FixedRowNnz) {
  Rng rng(34);
  const auto a = random_fixed_row_nnz_matrix(rng, 33, 64, 7);
  EXPECT_TRUE(a.valid());
  for (std::uint32_t r = 0; r < a.rows(); ++r) EXPECT_EQ(a.row_nnz(r), 7u);
  EXPECT_DOUBLE_EQ(a.avg_row_nnz(), 7.0);
  EXPECT_EQ(a.max_row_nnz(), 7u);
}

TEST(Generate, BandedStructure) {
  Rng rng(35);
  const std::uint32_t bw = 3;
  const auto a = banded_matrix(rng, 32, bw);
  EXPECT_TRUE(a.valid());
  for (std::uint32_t r = 0; r < a.rows(); ++r) {
    for (std::uint32_t k = a.row_begin(r); k < a.row_end(r); ++k) {
      const std::int64_t d = static_cast<std::int64_t>(a.idcs()[k]) -
                             static_cast<std::int64_t>(r);
      EXPECT_LE(std::abs(d), static_cast<std::int64_t>(bw));
    }
  }
  // Full band: interior rows have 2*bw+1 entries.
  EXPECT_EQ(a.row_nnz(16), 2 * bw + 1);
}

TEST(Generate, PowerlawApproximatesTargetAverage) {
  Rng rng(36);
  const auto a = powerlaw_matrix(rng, 500, 500, 8.0, 0.8);
  EXPECT_TRUE(a.valid());
  EXPECT_NEAR(a.avg_row_nnz(), 8.0, 1.5);
  // Power-law: the max row must far exceed the mean.
  EXPECT_GT(a.max_row_nnz(), 3 * 8);
}

TEST(Generate, Torus2dDegreeFour) {
  Rng rng(37);
  const auto a = torus2d_matrix(rng, 8, 4, /*with_diagonal=*/false);
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a.rows(), 32u);
  for (std::uint32_t r = 0; r < a.rows(); ++r) EXPECT_EQ(a.row_nnz(r), 4u);
}

TEST(Generate, Torus2dWithDiagonal) {
  Rng rng(38);
  const auto a = torus2d_matrix(rng, 4, 4, /*with_diagonal=*/true);
  for (std::uint32_t r = 0; r < a.rows(); ++r) EXPECT_EQ(a.row_nnz(r), 5u);
}

TEST(Generate, CodebookVectorDecodes) {
  Rng rng(39);
  const auto cb = random_codebook_vector(rng, 100, 16);
  EXPECT_EQ(cb.codebook.size(), 16u);
  EXPECT_EQ(cb.indices.size(), 100u);
  const auto dense = cb.densify();
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_LT(cb.indices[i], 16u);
    EXPECT_EQ(dense[i], cb.codebook[cb.indices[i]]);
  }
}

TEST(Suite, EntriesHavePaperScale) {
  const auto& entries = suite_entries();
  ASSERT_GE(entries.size(), 10u);
  std::uint64_t min_nnz = ~0ull, max_nnz = 0;
  for (const auto& e : entries) {
    min_nnz = std::min(min_nnz, e.nnz);
    max_nnz = std::max(max_nnz, e.nnz);
  }
  // Paper: 1.3k to 680.3k nonzeros (ragusa18 is the named tiny outlier).
  EXPECT_LE(min_nnz, 1300u);
  EXPECT_GE(max_nnz, 680000u);
}

TEST(Suite, AnchorsArePresent) {
  EXPECT_EQ(suite_entry("g11").family, MatrixFamily::kTorus);
  EXPECT_EQ(suite_entry("g7").family, MatrixFamily::kUniform);
  EXPECT_EQ(suite_entry("ragusa18").nnz, 64u);
}

TEST(Suite, BuildIsDeterministic) {
  const auto a = build_suite_matrix("g11");
  const auto b = build_suite_matrix("g11");
  EXPECT_EQ(a, b);
}

class SuiteBuild : public ::testing::TestWithParam<const char*> {};

TEST_P(SuiteBuild, MatchesDescriptorShape) {
  const auto& e = suite_entry(GetParam());
  const auto a = build_suite_matrix(e);
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a.rows(), e.rows);
  EXPECT_EQ(a.cols(), e.cols);
  // Exact for most families; banded/powerlaw land near the target.
  EXPECT_NEAR(static_cast<double>(a.nnz()), static_cast<double>(e.nnz),
              0.15 * static_cast<double>(e.nnz) + 8.0);
  EXPECT_TRUE(a.fits_u16());  // all suite matrices have < 64k columns
}

INSTANTIATE_TEST_SUITE_P(QuickSet, SuiteBuild,
                         ::testing::Values("ragusa18", "diag1300", "g11",
                                           "west2021", "plat1919", "g7",
                                           "orani678", "nasa2146"));

TEST(Suite, DiagonalFamilyHasEmptyRows) {
  const auto a = build_suite_matrix("diag1300");
  std::uint32_t empty = 0;
  for (std::uint32_t r = 0; r < a.rows(); ++r) {
    if (a.row_nnz(r) == 0) ++empty;
  }
  EXPECT_GT(empty, a.rows() / 3);
}

TEST(Reference, SpvvMatchesDensifiedDot) {
  Rng rng(40);
  const auto a = random_sparse_vector(rng, 128, 40);
  const auto b = random_dense_vector(rng, 128);
  const auto ad = a.densify();
  double expect = 0;
  for (std::size_t i = 0; i < 128; ++i) expect += ad[i] * b[i];
  EXPECT_NEAR(ref_spvv(a, b), expect, 1e-12);
}

TEST(Reference, CsrmvMatchesDenseProduct) {
  Rng rng(41);
  const auto a = random_uniform_matrix(rng, 17, 23, 90);
  const auto x = random_dense_vector(rng, 23);
  const auto y = ref_csrmv(a, x);
  const auto d = a.densify();
  for (std::uint32_t r = 0; r < 17; ++r) {
    double expect = 0;
    for (std::uint32_t c = 0; c < 23; ++c) expect += d.at(r, c) * x[c];
    EXPECT_NEAR(y[r], expect, 1e-12);
  }
}

TEST(Reference, CsrmmMatchesRepeatedCsrmv) {
  Rng rng(42);
  const auto a = random_uniform_matrix(rng, 11, 13, 50);
  const auto b = random_dense_matrix(rng, 13, 4);
  const auto y = ref_csrmm(a, b);
  for (std::size_t c = 0; c < 4; ++c) {
    const auto yc = ref_csrmv(a, b.column(c));
    for (std::uint32_t r = 0; r < 11; ++r) EXPECT_NEAR(y.at(r, c), yc[r], 1e-12);
  }
}

TEST(Reference, GatherScatterInverseOnPermutation) {
  Rng rng(43);
  std::vector<std::uint32_t> perm(64);
  for (std::uint32_t i = 0; i < 64; ++i) perm[i] = i;
  rng.shuffle(perm);
  const auto src = random_dense_vector(rng, 64);
  const auto gathered = ref_gather(src, perm);
  const auto scattered = ref_scatter(gathered, perm, 64);
  EXPECT_EQ(max_abs_diff(src, scattered), 0.0);
}

TEST(Reference, AxpySparseOntoDense) {
  Rng rng(44);
  const auto a = random_sparse_vector(rng, 32, 10);
  DenseVector y = random_dense_vector(rng, 32);
  const DenseVector y0 = y;
  ref_axpy_sparse_onto_dense(a, y);
  const auto ad = a.densify();
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_NEAR(y[i], y0[i] + ad[i], 1e-12);
  }
}

}  // namespace
}  // namespace issr::sparse
