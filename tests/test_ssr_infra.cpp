// Streamer infrastructure: FIFO, port hub routing, streamer CSR config
// round trips, and the dedicated-index-port configuration end to end.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/sim.hpp"
#include "kernels/spvv.hpp"
#include "mem/ideal_mem.hpp"
#include "sparse/generate.hpp"
#include "sparse/reference.hpp"
#include "ssr/fifo.hpp"
#include "ssr/port_hub.hpp"
#include "ssr/streamer.hpp"

namespace issr::ssr {
namespace {

TEST(Fifo, FifoOrderAndCapacity) {
  Fifo<int> f(3);
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.free_slots(), 3u);
  f.push(1);
  f.push(2);
  f.push(3);
  EXPECT_TRUE(f.full());
  EXPECT_EQ(f.front(), 1);
  EXPECT_EQ(f.pop(), 1);
  EXPECT_EQ(f.free_slots(), 1u);
  f.push(4);
  EXPECT_EQ(f.pop(), 2);
  EXPECT_EQ(f.pop(), 3);
  EXPECT_EQ(f.pop(), 4);
  EXPECT_TRUE(f.empty());
}

TEST(PortHub, RoutesResponsesByClient) {
  mem::IdealMemory mem(1, 1);
  mem.store().store_u64(0x100, 11);
  mem.store().store_u64(0x108, 22);
  PortHub hub(mem.port(0));
  PortClient a = hub.add_client();
  PortClient b = hub.add_client();

  ASSERT_TRUE(a.can_request());
  a.request({0x100, false, 8, 0, 0}, /*tag=*/7);
  mem.tick(1);
  hub.tick();
  ASSERT_TRUE(b.can_request());
  b.request({0x108, false, 8, 0, 0}, /*tag=*/9);
  mem.tick(2);
  hub.tick();

  mem::MemRsp ra;
  ASSERT_TRUE(a.pop_response(ra));
  EXPECT_EQ(ra.rdata, 11u);
  EXPECT_EQ(ra.id, 7u);  // private tag restored
  EXPECT_FALSE(a.pop_response(ra));

  mem::MemRsp rb;
  ASSERT_TRUE(b.pop_response(rb));
  EXPECT_EQ(rb.rdata, 22u);
  EXPECT_EQ(rb.id, 9u);
}

TEST(PortHub, FirstClaimWinsTheCycle) {
  mem::IdealMemory mem(1, 1);
  PortHub hub(mem.port(0));
  PortClient a = hub.add_client();
  PortClient b = hub.add_client();
  ASSERT_TRUE(a.can_request());
  a.request({0x0, false, 8, 0, 0});
  EXPECT_FALSE(b.can_request());  // port pending slot taken this cycle
  mem.tick(1);
  hub.tick();
  EXPECT_TRUE(b.can_request());
}

class StreamerCfgRoundTrip : public ::testing::Test {
 protected:
  StreamerCfgRoundTrip() : mem_(2, 1), hub0_(mem_.port(0)), hub1_(mem_.port(1)) {
    StreamerParams params;
    streamer_ = std::make_unique<Streamer>(params, hub0_.add_client(),
                                           hub1_.add_client());
  }
  mem::IdealMemory mem_;
  PortHub hub0_, hub1_;
  std::unique_ptr<Streamer> streamer_;
};

TEST_F(StreamerCfgRoundTrip, ConfigRegistersReadBack) {
  using isa::SsrCfgReg;
  streamer_->write_cfg(0, SsrCfgReg::kReps, 3);
  streamer_->write_cfg(0, SsrCfgReg::kBound0, 15);
  streamer_->write_cfg(0, SsrCfgReg::kBound2, 7);
  streamer_->write_cfg(0, SsrCfgReg::kStride0, static_cast<std::uint64_t>(-8));
  streamer_->write_cfg(1, SsrCfgReg::kIdxCfg, isa::kIdxCfgIdx16 | (2 << 4));
  streamer_->write_cfg(1, SsrCfgReg::kIdxBase, 0x1234);
  EXPECT_EQ(streamer_->read_cfg(0, SsrCfgReg::kReps), 3u);
  EXPECT_EQ(streamer_->read_cfg(0, SsrCfgReg::kBound0), 15u);
  EXPECT_EQ(streamer_->read_cfg(0, SsrCfgReg::kBound2), 7u);
  EXPECT_EQ(static_cast<std::int64_t>(
                streamer_->read_cfg(0, SsrCfgReg::kStride0)),
            -8);
  EXPECT_EQ(streamer_->read_cfg(1, SsrCfgReg::kIdxCfg),
            isa::kIdxCfgIdx16 | (2u << 4));
  EXPECT_EQ(streamer_->read_cfg(1, SsrCfgReg::kIdxBase), 0x1234u);
}

TEST_F(StreamerCfgRoundTrip, RptrArmsAndStatusReflects) {
  using isa::SsrCfgReg;
  streamer_->write_cfg(0, SsrCfgReg::kBound0, 3);
  streamer_->write_cfg(0, SsrCfgReg::kStride0, 8);
  EXPECT_FALSE(streamer_->busy());
  EXPECT_TRUE(streamer_->write_cfg(0, SsrCfgReg::kRptr, 0x2000));
  EXPECT_TRUE(streamer_->busy());
  EXPECT_EQ(streamer_->read_cfg(0, SsrCfgReg::kStatus) & 1u, 1u);
  // Second job parks in the shadow; a third is refused.
  EXPECT_TRUE(streamer_->write_cfg(0, SsrCfgReg::kRptr, 0x3000));
  EXPECT_FALSE(streamer_->write_cfg(0, SsrCfgReg::kRptr, 0x4000));
  EXPECT_EQ(streamer_->read_cfg(0, SsrCfgReg::kStatus) & 2u, 2u);
}

TEST_F(StreamerCfgRoundTrip, EnableMapsStreamRegisters) {
  EXPECT_FALSE(streamer_->is_stream_reg(0));
  streamer_->set_enabled(true);
  EXPECT_TRUE(streamer_->is_stream_reg(0));
  EXPECT_TRUE(streamer_->is_stream_reg(1));
  EXPECT_FALSE(streamer_->is_stream_reg(2));  // only ft0/ft1 redirect
  streamer_->set_enabled(false);
  EXPECT_FALSE(streamer_->is_stream_reg(1));
}

TEST(DedicatedIdxPort, SpvvCorrectAndUncapped) {
  // Functional check of the 3-port ablation topology plus its headline
  // property: the 16-bit ceiling rises from 0.8 toward 1.
  Rng rng(80);
  const auto a = sparse::random_sparse_vector(rng, 4096, 2048);
  const auto b = sparse::random_dense_vector(rng, 4096);
  core::CcSimConfig cfg;
  cfg.cc.streamer.issr_lane.dedicated_idx_port = true;
  core::CcSim sim(cfg);
  kernels::SpvvArgs args;
  args.a_vals = sim.stage(a.vals());
  args.a_idcs = sim.stage_indices(a.idcs(), sparse::IndexWidth::kU16);
  args.nnz = a.nnz();
  args.b = sim.stage(b);
  args.result = sim.alloc(8);
  args.width = sparse::IndexWidth::kU16;
  sim.set_program(kernels::build_spvv(kernels::Variant::kIssr, args));
  const auto r = sim.run();
  const double expect = sparse::ref_spvv(a, b);
  EXPECT_NEAR(sim.read_f64(args.result), expect,
              1e-9 * (1 + std::abs(expect)));
  EXPECT_GT(r.fpu_util(), 0.9);  // ceiling removed
}

}  // namespace
}  // namespace issr::ssr
