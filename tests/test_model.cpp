// Area/timing/energy model tests against the paper's §IV anchors.
#include <gtest/gtest.h>

#include "cluster/csrmv_mc.hpp"
#include "common/rng.hpp"
#include "model/area.hpp"
#include "model/comparison.hpp"
#include "model/energy.hpp"
#include "sparse/generate.hpp"

namespace issr::model {
namespace {

TEST(AreaModel, IssrDeltaMatchesPaper) {
  const auto area = streamer_area();
  // Paper: ISSR is 4.4 kGE or 43% larger than the equivalent SSR.
  EXPECT_NEAR(area.issr_minus_ssr(), 4.4, 0.5);
  EXPECT_NEAR(area.issr_overhead_frac(), 0.43, 0.05);
}

TEST(AreaModel, ClusterOverheadUnderOnePercent) {
  const auto cluster = cluster_area();
  EXPECT_NEAR(cluster.issr_overhead_frac, 0.008, 0.002);
  EXPECT_GT(cluster.cluster_kge, 4000.0);
}

TEST(AreaModel, TimingMatchesPaperAndMeetsClock) {
  const auto t = streamer_timing();
  EXPECT_NEAR(t.ssr_path_ps, 301.0, 1.0);
  EXPECT_NEAR(t.issr_path_ps, 425.0, 1.0);
  EXPECT_TRUE(t.meets_timing());
}

TEST(AreaModel, AreaGrowsMonotonicallyWithWidthAndDepth) {
  AreaParams narrow;
  narrow.index_bits = narrow.addr_bits = 16;
  AreaParams wide;
  wide.index_bits = wide.addr_bits = 32;
  EXPECT_LT(streamer_area(narrow).issr.total(),
            streamer_area(wide).issr.total());

  AreaParams shallow;
  shallow.data_fifo_depth = 2;
  AreaParams deep;
  deep.data_fifo_depth = 16;
  EXPECT_LT(streamer_area(shallow).issr.data_fifo,
            streamer_area(deep).issr.data_fifo);
}

TEST(AreaModel, DedicatedPortCostsInterconnect) {
  AreaParams shared;
  AreaParams dedicated;
  dedicated.dedicated_idx_port = true;
  EXPECT_GT(streamer_area(dedicated).switch_kge,
            streamer_area(shared).switch_kge);
}

TEST(Comparison, ReferencePointsMatchPaperText) {
  EXPECT_DOUBLE_EQ(gtx1080ti_fp64_util(), 0.17);
  EXPECT_DOUBLE_EQ(xeonphi_cvr_util(), 0.007);
  EXPECT_DOUBLE_EQ(jetson_fp32_util(), 0.021);
  const auto pts = reference_points();
  EXPECT_GE(pts.size(), 4u);
  for (const auto& p : pts) {
    EXPECT_FALSE(p.measured_here);
    EXPECT_GT(p.peak_fp_util, 0.0);
    EXPECT_LT(p.peak_fp_util, 0.2);
  }
}

class EnergyModel : public ::testing::Test {
 protected:
  cluster::McCsrmvResult run(kernels::Variant variant) {
    Rng rng(2000);
    const auto a = sparse::random_fixed_row_nnz_matrix(rng, 128, 256, 48);
    Rng rng2(2001);
    const auto x = sparse::random_dense_vector(rng2, 256);
    cluster::McCsrmvConfig cfg;
    cfg.variant = variant;
    cfg.width = sparse::IndexWidth::kU16;
    return cluster::run_csrmv_multicore(a, x, cfg);
  }
};

TEST_F(EnergyModel, IssrUsesMorePowerButLessEnergy) {
  const auto base = estimate_energy(run(kernels::Variant::kBase).cluster);
  const auto issr = estimate_energy(run(kernels::Variant::kIssr).cluster);
  // Paper: ISSR average power higher (89 -> 194 mW pattern)...
  EXPECT_GT(issr.avg_power_mw, base.avg_power_mw);
  // ...but energy per MAC improves (up to 2.7x).
  EXPECT_LT(issr.pj_per_fmadd, base.pj_per_fmadd);
  EXPECT_GT(base.pj_per_fmadd / issr.pj_per_fmadd, 1.4);
  // Both kernels perform the same number of MACs.
  EXPECT_EQ(base.fmadds, issr.fmadds);
}

TEST_F(EnergyModel, PowerWithinPaperRange) {
  const auto base = estimate_energy(run(kernels::Variant::kBase).cluster);
  const auto issr = estimate_energy(run(kernels::Variant::kIssr).cluster);
  // Calibration sanity: same order of magnitude as the published pair
  // (89 mW BASE, 194 mW ISSR at the paper's utilizations).
  EXPECT_GT(base.avg_power_mw, 40.0);
  EXPECT_LT(base.avg_power_mw, 140.0);
  EXPECT_GT(issr.avg_power_mw, 80.0);
  EXPECT_LT(issr.avg_power_mw, 260.0);
}

TEST(EnergyModelUnit, ZeroCyclesYieldsZero) {
  cluster::ClusterResult empty;
  const auto r = estimate_energy(empty);
  EXPECT_EQ(r.energy_uj, 0.0);
  EXPECT_EQ(r.avg_power_mw, 0.0);
}

TEST(EnergyModelUnit, EnergyScalesWithClock) {
  Rng rng(2002);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 64, 128, 16);
  const auto x = sparse::random_dense_vector(rng, 128);
  cluster::McCsrmvConfig cfg;
  cfg.variant = kernels::Variant::kIssr;
  const auto run = cluster::run_csrmv_multicore(a, x, cfg);
  const auto at1ghz = estimate_energy(run.cluster, {}, 1.0);
  const auto at2ghz = estimate_energy(run.cluster, {}, 2.0);
  // Same cycle count at double the clock: half the time, half the energy
  // (the simple model keeps power per cycle constant).
  EXPECT_NEAR(at2ghz.energy_uj, at1ghz.energy_uj / 2, 1e-9);
}

}  // namespace
}  // namespace issr::model
