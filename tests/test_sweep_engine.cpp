// Sweep-engine tests: scheduler/cache determinism (bytewise-identical
// JSON/CSV/trace outputs across --jobs 1/2/8, asset cache on and off,
// and multi-rep batches), asset-cache identity semantics
// (pointer-identical assets for equal keys, distinct for differing
// seeds), cost-model ordering, and sweep telemetry.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/version.hpp"
#include "core/compile.hpp"
#include "driver/assets.hpp"
#include "driver/report.hpp"
#include "driver/runner.hpp"
#include "driver/sweep.hpp"
#include "isa/program.hpp"
#include "kernels/csrmv.hpp"
#include "sparse/generate.hpp"

namespace issr::driver {
namespace {

/// A mixed sweep shaped like the paper-figure matrix: fig4a (single-CC
/// SpVV), fig4b (single-CC CsrMV across variants), fig4c (cluster CsrMV)
/// — small shapes, full engine diversity.
std::vector<Scenario> mixed_fig_scenarios() {
  ScenarioMatrix m;
  m.kernels = {Kernel::kSpvv, Kernel::kCsrmv};
  m.variants = {kernels::Variant::kBase, kernels::Variant::kSsr,
                kernels::Variant::kIssr};
  m.widths = {sparse::IndexWidth::kU16, sparse::IndexWidth::kU32};
  m.families = {sparse::MatrixFamily::kUniform,
                sparse::MatrixFamily::kPowerLaw};
  m.densities = {0.1};
  m.cores = {1, 4};
  m.rows = 32;
  m.cols = 64;
  return m.expand();
}

SweepOutcome sweep(const std::vector<Scenario>& scenarios, unsigned jobs,
                   bool cache, unsigned reps = 1,
                   const RunOptions& opts = {}) {
  SweepSpec spec;
  spec.scenarios = scenarios;
  spec.jobs = jobs;
  spec.reps = reps;
  spec.asset_cache = cache;
  spec.options = opts;
  return run_sweep(spec);
}

// --- Bytewise determinism across jobs / cache / reps -------------------------

TEST(SweepEngine, OutputsIdenticalAcrossJobsAndCache) {
  const auto scenarios = mixed_fig_scenarios();
  ASSERT_GE(scenarios.size(), 10u);

  const auto reference = sweep(scenarios, 1, /*cache=*/true);
  const std::string ref_json = results_to_json(reference.results);
  const std::string ref_csv = results_to_csv(reference.results);

  for (const unsigned jobs : {1u, 2u, 8u}) {
    for (const bool cache : {true, false}) {
      const auto got = sweep(scenarios, jobs, cache);
      EXPECT_EQ(results_to_json(got.results), ref_json)
          << "jobs=" << jobs << " cache=" << cache;
      EXPECT_EQ(results_to_csv(got.results), ref_csv)
          << "jobs=" << jobs << " cache=" << cache;
    }
  }
}

TEST(SweepEngine, OutputsAreRepInvariant) {
  auto scenarios = mixed_fig_scenarios();
  scenarios.resize(6);  // keep the rep sweep quick
  const auto once = sweep(scenarios, 2, /*cache=*/true, /*reps=*/1);
  const auto thrice = sweep(scenarios, 8, /*cache=*/true, /*reps=*/3);
  EXPECT_EQ(results_to_json(once.results), results_to_json(thrice.results));
  EXPECT_EQ(thrice.stats.runs, scenarios.size() * 3);
  // Reps share the scenario's workload: builds stay at the unique-key
  // count while hits grow with reps.
  EXPECT_EQ(thrice.stats.cache.workload_builds,
            once.stats.cache.workload_builds);
  EXPECT_GT(thrice.stats.cache.workload_hits, once.stats.cache.workload_hits);
  // Reps replay identical staged arguments, so the single-CC rows hit
  // both the Program cache and the compiled-translation cache: one
  // decode per distinct program, shared across every rep.
  EXPECT_EQ(thrice.stats.cache.compiled_builds,
            thrice.stats.cache.program_builds);
  EXPECT_EQ(thrice.stats.cache.compiled_hits, thrice.stats.cache.program_hits);
  EXPECT_GT(thrice.stats.cache.compiled_hits, 0u);
}

TEST(SweepEngine, TraceFilesIdenticalWithAndWithoutCache) {
  namespace fs = std::filesystem;
  auto scenarios = mixed_fig_scenarios();
  scenarios.resize(4);
  const fs::path base = fs::temp_directory_path() / "issr_sweep_trace_test";
  const fs::path dir_on = base / "on";
  const fs::path dir_off = base / "off";
  fs::remove_all(base);
  fs::create_directories(dir_on);
  fs::create_directories(dir_off);

  RunOptions opts;
  opts.trace_events = 1 << 12;
  opts.trace_dir = dir_on.string();
  sweep(scenarios, 4, /*cache=*/true, /*reps=*/2, opts);
  opts.trace_dir = dir_off.string();
  sweep(scenarios, 1, /*cache=*/false, /*reps=*/1, opts);

  const auto slurp = [](const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  unsigned compared = 0;
  for (const auto& s : scenarios) {
    const std::string on = trace_file_path(dir_on.string(), s);
    const std::string off = trace_file_path(dir_off.string(), s);
    ASSERT_TRUE(fs::exists(on)) << on;
    ASSERT_TRUE(fs::exists(off)) << off;
    EXPECT_EQ(slurp(on), slurp(off)) << s.name();
    ++compared;
  }
  EXPECT_EQ(compared, scenarios.size());
  fs::remove_all(base);
}

// --- Asset cache identity ----------------------------------------------------

TEST(AssetCache, EqualKeysShareOneAsset) {
  const auto scenarios = mixed_fig_scenarios();
  // A variant/width/cores sweep shares one workload per (kernel, family,
  // density, shape) by design — find two scenarios with equal keys.
  const Scenario* a = nullptr;
  const Scenario* b = nullptr;
  for (std::size_t i = 0; i < scenarios.size() && b == nullptr; ++i) {
    for (std::size_t j = i + 1; j < scenarios.size(); ++j) {
      if (workload_key(scenarios[i]) == workload_key(scenarios[j])) {
        a = &scenarios[i];
        b = &scenarios[j];
        break;
      }
    }
  }
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  AssetCache cache;
  const auto wa = cache.workload(*a);
  const auto wb = cache.workload(*b);
  EXPECT_EQ(wa.get(), wb.get());  // pointer-identical shared asset
  const auto stats = cache.stats();
  EXPECT_EQ(stats.workload_builds, 1u);
  EXPECT_EQ(stats.workload_hits, 1u);
}

TEST(AssetCache, DifferingSeedsGetDistinctAssets) {
  Scenario s;
  s.kernel = Kernel::kCsrmv;
  s.family = sparse::MatrixFamily::kUniform;
  s.rows = 16;
  s.cols = 32;
  s.density = 0.1;
  s.seed = derive_seed(1, s.kernel, s.family, s.density, s.rows, s.cols);
  Scenario t = s;
  t.seed = derive_seed(2, t.kernel, t.family, t.density, t.rows, t.cols);
  ASSERT_NE(s.seed, t.seed);

  AssetCache cache;
  const auto ws = cache.workload(s);
  const auto wt = cache.workload(t);
  EXPECT_NE(ws.get(), wt.get());
  // Distinct seeds generate distinct values, not just distinct objects.
  ASSERT_EQ(ws->csrmv_a->nnz(), wt->csrmv_a->nnz());
  EXPECT_NE(ws->csrmv_a->vals(), wt->csrmv_a->vals());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.workload_builds, 2u);
  EXPECT_EQ(stats.workload_hits, 0u);
}

TEST(AssetCache, CachedWorkloadEqualsFreshBuild) {
  Scenario s;
  s.kernel = Kernel::kCsrmv;
  s.family = sparse::MatrixFamily::kPowerLaw;
  s.rows = 24;
  s.cols = 48;
  s.density = 0.1;
  s.seed = derive_seed(7, s.kernel, s.family, s.density, s.rows, s.cols);

  AssetCache cache;
  const auto cached = cache.workload(s);
  const Workload fresh = build_workload(workload_key(s));
  EXPECT_EQ(cached->csrmv_a->vals(), fresh.csrmv_a->vals());
  EXPECT_EQ(cached->csrmv_a->idcs(), fresh.csrmv_a->idcs());
  EXPECT_EQ(cached->csrmv_a->ptr(), fresh.csrmv_a->ptr());
  EXPECT_EQ(cached->dense->vec(), fresh.dense->vec());
}

TEST(AssetCache, SharedProgramEqualsFreshAssembly) {
  kernels::CsrmvArgs args;
  args.ptr = 0x1000'0000;
  args.idcs = 0x1000'0100;
  args.vals = 0x1000'0200;
  args.nrows = 8;
  args.nnz = 40;
  args.x = 0x1000'0400;
  args.y = 0x1000'0800;
  args.width = sparse::IndexWidth::kU16;
  const auto build = [&] {
    return kernels::build_csrmv(kernels::Variant::kIssr, args);
  };

  AssetCache cache;
  const auto p1 = cache.program("csrmv-test-key", build);
  const auto p2 = cache.program("csrmv-test-key", build);
  EXPECT_EQ(p1.get(), p2.get());  // built once, shared
  EXPECT_TRUE(*p1 == build());    // and identical to a fresh assembly
  const auto stats = cache.stats();
  EXPECT_EQ(stats.program_builds, 1u);
  EXPECT_EQ(stats.program_hits, 1u);
}

TEST(AssetCache, CompiledKeyCarriesSchemaAndEngineProvenance) {
  const std::string key = compiled_program_key("csrmv-test-key");
  // Schema tag first, then every engine provenance field: a cache entry
  // can never be served to a different translator build.
  EXPECT_EQ(key.rfind("compiled.v5/", 0), 0u);
  EXPECT_NE(key.find(engine_version()), std::string::npos);
  EXPECT_NE(key.find(engine_build_type()), std::string::npos);
  EXPECT_NE(key.find("/lto="), std::string::npos);
  // The program identity survives qualification verbatim.
  EXPECT_NE(key.find("csrmv-test-key"), std::string::npos);
  EXPECT_NE(key, compiled_program_key("other-key"));
}

TEST(AssetCache, SharedCompiledTranslationBuiltOnce) {
  kernels::CsrmvArgs args;
  args.ptr = 0x1000'0000;
  args.idcs = 0x1000'0100;
  args.vals = 0x1000'0200;
  args.nrows = 8;
  args.nnz = 40;
  args.x = 0x1000'0400;
  args.y = 0x1000'0800;
  args.width = sparse::IndexWidth::kU16;
  const auto program = kernels::build_csrmv(kernels::Variant::kIssr, args);
  const auto build = [&] { return core::CompiledProgram(program); };

  AssetCache cache;
  const std::string key = compiled_program_key("csrmv-test-key");
  const auto c1 = cache.compiled(key, build);
  const auto c2 = cache.compiled(key, build);
  EXPECT_EQ(c1.get(), c2.get());  // translated once, shared
  // Identical structure to a fresh translation of the same program.
  const core::CompiledProgram fresh(program);
  EXPECT_EQ(c1->size(), fresh.size());
  EXPECT_EQ(c1->blocks().size(), fresh.blocks().size());
  EXPECT_EQ(c1->freps().size(), fresh.freps().size());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.compiled_builds, 1u);
  EXPECT_EQ(stats.compiled_hits, 1u);
  EXPECT_EQ(stats.program_builds, 0u);  // separate namespace from Programs
}

// --- Scheduler telemetry and cost model --------------------------------------

TEST(SweepEngine, CacheCountsUniqueWorkloadsOnce) {
  const auto scenarios = mixed_fig_scenarios();
  std::size_t unique = 0;
  {
    std::vector<WorkloadKey> seen;
    for (const auto& s : scenarios) {
      const auto k = workload_key(s);
      bool found = false;
      for (const auto& e : seen) found |= e == k;
      if (!found) {
        seen.push_back(k);
        ++unique;
      }
    }
  }
  ASSERT_LT(unique, scenarios.size());  // the mix must actually share

  const auto outcome = sweep(scenarios, 4, /*cache=*/true);
  EXPECT_EQ(outcome.stats.cache.workload_builds, unique);
  EXPECT_EQ(outcome.stats.cache.workload_hits, scenarios.size() - unique);
  EXPECT_EQ(outcome.stats.runs, scenarios.size());
  EXPECT_GT(outcome.stats.core_cycles, 0u);
  EXPECT_GT(outcome.stats.wall_seconds, 0.0);
  // With the compiled tier on by default, every cached Program fetch is
  // paired with a compiled-translation fetch under the qualified key, so
  // the counters mirror exactly: one translation per distinct program.
  EXPECT_EQ(outcome.stats.cache.compiled_builds,
            outcome.stats.cache.program_builds);
  EXPECT_EQ(outcome.stats.cache.compiled_hits,
            outcome.stats.cache.program_hits);

  const auto uncached = sweep(scenarios, 4, /*cache=*/false);
  EXPECT_EQ(uncached.stats.cache.workload_builds, 0u);
  EXPECT_EQ(uncached.stats.cache.workload_hits, 0u);
  EXPECT_EQ(uncached.stats.cache.compiled_builds, 0u);
  EXPECT_EQ(uncached.stats.cache.compiled_hits, 0u);
}

TEST(SweepEngine, CostModelOrdersByWorkAndEngine) {
  Scenario small;
  small.kernel = Kernel::kCsrmv;
  small.variant = kernels::Variant::kIssr;
  small.rows = 32;
  small.cols = 64;
  small.density = 0.05;

  Scenario big = small;
  big.rows = 512;
  big.cols = 1024;
  EXPECT_GT(estimated_cost(big), estimated_cost(small));

  Scenario base = small;
  base.variant = kernels::Variant::kBase;
  EXPECT_GT(estimated_cost(base), estimated_cost(small));

  Scenario cluster = small;
  cluster.cores = 8;
  EXPECT_GT(estimated_cost(cluster), estimated_cost(small));

  Scenario denser = small;
  denser.density = 0.2;
  EXPECT_GT(estimated_cost(denser), estimated_cost(small));
}

TEST(SweepEngine, RunScenariosWrapperMatchesRunSweep) {
  auto scenarios = mixed_fig_scenarios();
  scenarios.resize(5);
  const auto via_wrapper = run_scenarios(scenarios, 3);
  const auto via_sweep = sweep(scenarios, 3, /*cache=*/true);
  EXPECT_EQ(results_to_json(via_wrapper), results_to_json(via_sweep.results));
}

TEST(SweepEngine, EmptySweepIsWellFormed) {
  const auto outcome = sweep({}, 4, true, 3);
  EXPECT_TRUE(outcome.results.empty());
  EXPECT_EQ(outcome.stats.runs, 0u);
}

}  // namespace
}  // namespace issr::driver
