// Trace/telemetry subsystem tests: JSON string escaping, the ring-buffer
// collector, stall-bucket classification, the buckets-sum-to-cycles
// invariant across kernels and the cluster, Chrome trace export
// round-trip (syntactic validity, per-track monotonic timestamps,
// balanced slices), trace-on/off determinism, and the aborted-run status.
#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/sim.hpp"
#include "driver/runner.hpp"
#include "driver/runs.hpp"
#include "isa/assembler.hpp"
#include "sparse/generate.hpp"
#include "trace/chrome.hpp"
#include "trace/ring.hpp"
#include "trace/stall.hpp"
#include "trace/trace.hpp"

namespace issr {
namespace {

using trace::Bucket;
using trace::Event;
using trace::Phase;
using trace::RingBufferSink;

// --- JSON escaping ----------------------------------------------------------

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(trace::json_escape("cc0/issr job-42"), "cc0/issr job-42");
  EXPECT_EQ(trace::json_escape(""), "");
}

TEST(JsonEscape, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(trace::json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(trace::json_escape("a\\b"), "a\\\\b");
}

TEST(JsonEscape, EscapesControlCharacters) {
  EXPECT_EQ(trace::json_escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(trace::json_escape(std::string("\b\f")), "\\b\\f");
  EXPECT_EQ(trace::json_escape(std::string("x\x01y", 3)), "x\\u0001y");
  EXPECT_EQ(trace::json_escape(std::string("\x1f", 1)), "\\u001f");
}

TEST(JsonEscape, LeavesUtf8Untouched) {
  EXPECT_EQ(trace::json_escape("μ-arch ✓"), "μ-arch ✓");
}

// --- Ring buffer collector --------------------------------------------------

TEST(RingBuffer, RecordsTracksAndEventsInOrder) {
  RingBufferSink sink(16);
  const auto t0 = sink.add_track("cc0", "core");
  const auto t1 = sink.add_track("cc0", "fpss");
  EXPECT_EQ(t0, 0u);
  EXPECT_EQ(t1, 1u);
  ASSERT_EQ(sink.tracks().size(), 2u);
  EXPECT_EQ(sink.tracks()[1].process, "cc0");
  EXPECT_EQ(sink.tracks()[1].name, "fpss");

  sink.record({1, t0, Phase::kBegin, "a", 0});
  sink.record({2, t1, Phase::kInstant, "b", 7});
  const auto events = sink.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].ts, 1u);
  EXPECT_EQ(events[1].value, 7u);
  EXPECT_EQ(sink.overwritten(), 0u);
}

TEST(RingBuffer, OverwritesOldestWhenFull) {
  RingBufferSink sink(4);
  const auto t = sink.add_track("p", "t");
  for (std::uint64_t i = 0; i < 10; ++i) {
    sink.record({i, t, Phase::kInstant, "e", i});
  }
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.recorded(), 10u);
  EXPECT_EQ(sink.overwritten(), 6u);
  const auto events = sink.events();
  ASSERT_EQ(events.size(), 4u);
  // The retained window is the most recent events, oldest first.
  EXPECT_EQ(events.front().ts, 6u);
  EXPECT_EQ(events.back().ts, 9u);
}

// --- Bucket classification --------------------------------------------------

TEST(StallClassify, PriorityOrder) {
  trace::CycleObservation o;
  o.fp_compute = true;
  o.issued = true;
  o.port_conflict = true;
  EXPECT_EQ(trace::classify(o), Bucket::kFpCompute);
  o.fp_compute = false;
  EXPECT_EQ(trace::classify(o), Bucket::kIssue);
  o.issued = false;
  EXPECT_EQ(trace::classify(o), Bucket::kTcdmConflict);
  o.port_conflict = false;
  o.halted = true;
  EXPECT_EQ(trace::classify(o), Bucket::kDrain);
  o.halted = false;
  EXPECT_EQ(trace::classify(o), Bucket::kOther);
}

TEST(StallClassify, StreamStallSubdivision) {
  trace::CycleObservation o;
  o.stream_stall = true;
  EXPECT_EQ(trace::classify(o), Bucket::kStreamStarved);
  o.port_conflict = true;
  EXPECT_EQ(trace::classify(o), Bucket::kTcdmConflict);
  o.idx_serializer = true;  // serializer attribution wins over the port
  EXPECT_EQ(trace::classify(o), Bucket::kIdxSerializer);
  o.barrier_stall = true;  // barrier outranks every stream cause
  EXPECT_EQ(trace::classify(o), Bucket::kBarrier);
}

TEST(StarveCause, LatchedAtStarvationTime) {
  // An indirect read job with nothing fetched yet: the FPU-side pop
  // failure must latch kSerializer (the index path has produced no data
  // address), and the latch must survive the lane's subsequent tick —
  // which advances the pipeline past the state that explains the stall.
  mem::IdealMemory mem(1, 1);
  ssr::PortHub hub(mem.port(0));
  ssr::LaneParams params;
  params.has_indirection = true;
  ssr::Lane lane(params, hub.add_client());

  const addr_t base = 0x1000'0000;
  mem.store().store(base + 0x100, 0, 8);  // index word 0 -> data [0]
  lane.submit(ssr::make_indirect(base, base + 0x100, 1,
                                 sparse::IndexWidth::kU16, 0, false));
  ASSERT_TRUE(lane.active());
  EXPECT_FALSE(lane.can_pop());
  lane.note_starved();
  EXPECT_EQ(lane.last_starve_cause(), ssr::Lane::StarveCause::kSerializer);

  // While the index word is still in flight the whole index path remains
  // the attributed gate; once the data fetch itself is outstanding the
  // cause becomes memory latency.
  for (cycle_t t = 0; t < 3 && !lane.can_pop(); ++t) {
    mem.tick(t);
    hub.tick();
    lane.note_starved();
    EXPECT_NE(lane.last_starve_cause(),
              ssr::Lane::StarveCause::kPortContention);
    lane.tick(t);
  }
  EXPECT_EQ(lane.last_starve_cause(), ssr::Lane::StarveCause::kMemLatency);
}

TEST(StallBuckets, SumAndNames) {
  trace::StallBuckets b;
  b[Bucket::kFpCompute] = 3;
  b[Bucket::kOther] = 2;
  EXPECT_EQ(b.total(), 5u);
  EXPECT_DOUBLE_EQ(b.fraction(Bucket::kFpCompute), 0.6);
  for (unsigned i = 0; i < trace::kNumBuckets; ++i) {
    EXPECT_STRNE(trace::to_string(static_cast<Bucket>(i)), "?");
  }
}

// --- Invariant: buckets decompose every cycle, across kernels ---------------

TEST(StallInvariant, SpvvAllVariantsSumToCycles) {
  Rng rng(7);
  const auto a = sparse::random_sparse_vector(rng, 512, 128);
  const auto b = sparse::random_dense_vector(rng, 512);
  for (const auto variant :
       {kernels::Variant::kBase, kernels::Variant::kSsr,
        kernels::Variant::kIssr}) {
    for (const auto width : {sparse::IndexWidth::kU16, sparse::IndexWidth::kU32}) {
      const auto r = driver::run_spvv_cc(variant, width, a, b);
      ASSERT_TRUE(r.ok);
      EXPECT_EQ(r.sim.stalls.total(), r.sim.cycles);
      // The FP-compute bucket is exactly the FPU arithmetic issue count
      // (at most one FP issue per cycle, and it outranks all buckets).
      EXPECT_EQ(r.sim.stalls[Bucket::kFpCompute], r.sim.fpss.fp_compute);
    }
  }
}

TEST(StallInvariant, CsrmvSumAndIssrStarvationShows) {
  Rng rng(11);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 48, 96, 6);
  const auto x = sparse::random_dense_vector(rng, 96);
  for (const auto variant :
       {kernels::Variant::kBase, kernels::Variant::kSsr,
        kernels::Variant::kIssr}) {
    const auto r =
        driver::run_csrmv_cc(variant, sparse::IndexWidth::kU16, a, x);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.sim.stalls.total(), r.sim.cycles);
    EXPECT_EQ(r.sim.stalls[Bucket::kFpCompute], r.sim.fpss.fp_compute);
  }

  // A long ISSR SpVV is port-mux limited (the paper's 4/5 ceiling): the
  // non-compute remainder must surface as stream-side attribution, not
  // vanish into "other".
  Rng rng2(13);
  const auto av = sparse::random_sparse_vector(rng2, 4096, 2048);
  const auto bv = sparse::random_dense_vector(rng2, 4096);
  const auto big = driver::run_spvv_cc(kernels::Variant::kIssr,
                                       sparse::IndexWidth::kU16, av, bv);
  ASSERT_TRUE(big.ok);
  const auto starved = big.sim.stalls[Bucket::kStreamStarved] +
                       big.sim.stalls[Bucket::kIdxSerializer] +
                       big.sim.stalls[Bucket::kTcdmConflict];
  EXPECT_GT(starved, big.sim.cycles / 20);
  EXPECT_LT(big.sim.stalls[Bucket::kOther], big.sim.cycles / 20);
}

TEST(StallInvariant, ClusterPerWorkerAndTotal) {
  Rng rng(17);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 64, 64, 8);
  const auto x = sparse::random_dense_vector(rng, 64);
  const auto r = driver::run_csrmv_mc(kernels::Variant::kIssr,
                                      sparse::IndexWidth::kU16, 4, a, x);
  ASSERT_TRUE(r.ok);
  const auto& cl = r.mc.cluster;
  ASSERT_EQ(cl.stalls.size(), 4u);
  for (const auto& s : cl.stalls) {
    EXPECT_EQ(s.total(), cl.cycles);
  }
  EXPECT_EQ(cl.total_stalls().total(), cl.cycles * 4);
}

// --- Determinism: tracing must not perturb the simulation -------------------

TEST(TraceDeterminism, TracedRunMatchesUntraced) {
  Rng rng(23);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 32, 64, 5);
  const auto x = sparse::random_dense_vector(rng, 64);

  RingBufferSink sink;
  const auto plain =
      driver::run_csrmv_cc(kernels::Variant::kIssr, sparse::IndexWidth::kU16,
                           a, x);
  const auto traced =
      driver::run_csrmv_cc(kernels::Variant::kIssr, sparse::IndexWidth::kU16,
                           a, x, &sink);
  ASSERT_TRUE(plain.ok);
  ASSERT_TRUE(traced.ok);
  EXPECT_EQ(plain.sim.cycles, traced.sim.cycles);
  EXPECT_EQ(plain.sim.core.issued, traced.sim.core.issued);
  EXPECT_EQ(plain.sim.fpss.issued, traced.sim.fpss.issued);
  EXPECT_EQ(plain.sim.stalls, traced.sim.stalls);
  EXPECT_EQ(plain.y.vec(), traced.y.vec());
  EXPECT_GT(sink.recorded(), 0u);
}

// --- Chrome export round-trip -----------------------------------------------

/// Minimal JSON syntax scanner: verifies string/escape handling and
/// brace/bracket nesting without a JSON library. Returns true iff `s` is
/// structurally well-formed (single top-level value, balanced nesting).
bool json_well_formed(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  bool seen_top = false;
  for (const char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[':
        if (depth == 0 && seen_top) return false;
        ++depth;
        seen_top = true;
        break;
      case '}': case ']':
        if (--depth < 0) return false;
        break;
      default: break;
    }
  }
  return depth == 0 && !in_string && !escaped && seen_top;
}

TEST(ChromeTrace, RoundTripFromRealRun) {
  Rng rng(29);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 24, 48, 6);
  const auto x = sparse::random_dense_vector(rng, 48);
  RingBufferSink sink;
  const auto r = driver::run_csrmv_cc(kernels::Variant::kIssr,
                                      sparse::IndexWidth::kU16, a, x, &sink);
  ASSERT_TRUE(r.ok);
  ASSERT_GT(sink.size(), 0u);

  const std::string doc = trace::to_chrome_json(sink);
  EXPECT_TRUE(json_well_formed(doc));
  EXPECT_EQ(doc.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(doc.find("\"process_name\""), std::string::npos);
  EXPECT_NE(doc.find("\"cc0\""), std::string::npos);
  EXPECT_NE(doc.find("\"issr\""), std::string::npos);
  EXPECT_NE(doc.find("\"stall\""), std::string::npos);

  // Balanced slices: every begin has its end (close_trace sealed the
  // stall timeline), so B and E phase counts match.
  const auto count = [&](const char* needle) {
    std::size_t n = 0;
    for (std::size_t at = doc.find(needle); at != std::string::npos;
         at = doc.find(needle, at + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count("\"ph\":\"B\""), count("\"ph\":\"E\""));
  EXPECT_GT(count("\"ph\":\"B\""), 0u);
}

TEST(ChromeTrace, TimestampsMonotonicPerTrack) {
  Rng rng(31);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 64, 64, 8);
  const auto x = sparse::random_dense_vector(rng, 64);
  RingBufferSink sink;
  const auto r = driver::run_csrmv_mc(kernels::Variant::kIssr,
                                      sparse::IndexWidth::kU16, 2, a, x,
                                      &sink);
  ASSERT_TRUE(r.ok);
  ASSERT_GT(sink.size(), 0u);
  std::map<std::uint32_t, cycle_t> last;
  for (const Event& e : sink.events()) {
    const auto it = last.find(e.track);
    if (it != last.end()) {
      EXPECT_GE(e.ts, it->second) << "track " << e.track << " went backward";
    }
    last[e.track] = e.ts;
  }
  // Cluster runs register per-worker, TCDM-bank, DMA and barrier tracks.
  EXPECT_GT(sink.tracks().size(), 32u);
}

TEST(ChromeTrace, JsonValidatorCatchesCorruption) {
  EXPECT_TRUE(json_well_formed("{\"a\":[1,2,\"x\\\"y\"]}"));
  EXPECT_FALSE(json_well_formed("{\"a\":[1,2}"));
  EXPECT_FALSE(json_well_formed("{\"a\":\"unterminated}"));
  EXPECT_FALSE(json_well_formed("{}{}"));
}

// --- Trace file naming ------------------------------------------------------

TEST(TraceFiles, PathSanitizesScenarioName) {
  driver::Scenario s;
  s.kernel = driver::Kernel::kCsrmv;
  s.variant = kernels::Variant::kIssr;
  s.width = sparse::IndexWidth::kU16;
  s.family = sparse::MatrixFamily::kUniform;
  s.density = 0.05;
  s.cores = 8;
  const std::string path = driver::trace_file_path("out", s);
  EXPECT_EQ(path.find("out/"), 0u);
  EXPECT_EQ(path.find('/', 4), std::string::npos)
      << "scenario '/' separators must be flattened: " << path;
  EXPECT_NE(path.find(".trace.json"), std::string::npos);
}

// --- Aborted runs are distinguishable ---------------------------------------

TEST(AbortedRun, HitsCycleLimitWithStatusAndPc) {
  core::CcSim sim;
  isa::Assembler a;
  const isa::Label spin = a.here();
  a.j(spin);  // 1-instruction infinite loop
  sim.set_program(a.assemble());
  const auto r = sim.run(200);
  EXPECT_TRUE(r.aborted);
  EXPECT_EQ(r.cycles, 200u);
  EXPECT_EQ(r.last_pc, isa::Program::kBaseAddr);
  // The abort is classified: a spinning core makes forward progress
  // every cycle, so this is the budget fault, not the no-progress one.
  EXPECT_EQ(r.fault.code, sim::FaultCode::kCycleLimit);
  EXPECT_EQ(r.fault.cycle, 200u);
  ASSERT_EQ(r.fault.harts.size(), 1u);
  EXPECT_EQ(r.fault.harts[0].pc, isa::Program::kBaseAddr);
  // The truncated run still satisfies the attribution invariant.
  EXPECT_EQ(r.stalls.total(), r.cycles);
}

TEST(AbortedRun, NormalFinishIsNotAborted) {
  core::CcSim sim;
  isa::Assembler a;
  a.ecall();
  sim.set_program(a.assemble());
  const auto r = sim.run(200);
  EXPECT_FALSE(r.aborted);
  EXPECT_FALSE(r.fault);
  EXPECT_LT(r.cycles, 200u);
}

}  // namespace
}  // namespace issr
