// Fault taxonomy, run watchdog, and sweep fault-isolation tests: the
// exact no-progress watchdog (barrier-drop deadlocks detected the moment
// the horizon empties, far before any cycle budget), --max-cycles
// classification, deterministic fault injection end to end through
// run_scenario/run_sweep, host-exception isolation and retry, fail-fast
// skipping, and the v6 reporting bar — injected sweeps stay bytewise
// jobs-invariant, and a no-op injection plan emits bytes identical to no
// plan at all.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/types.hpp"
#include "core/engine.hpp"
#include "core/sim.hpp"
#include "driver/report.hpp"
#include "driver/runner.hpp"
#include "driver/scenario.hpp"
#include "driver/sweep.hpp"
#include "isa/assembler.hpp"
#include "kernels/kargs.hpp"
#include "sim/fault.hpp"
#include "sparse/csr.hpp"
#include "trace/ring.hpp"

namespace issr {
namespace {

using driver::Kernel;
using driver::RunOptions;
using driver::Scenario;
using driver::ScenarioMatrix;
using driver::ScenarioResult;
using driver::SweepSpec;
using sim::FaultCode;
using sim::FaultPlan;
using sim::InjectKind;

FaultPlan plan(const std::string& text) {
  FaultPlan p;
  std::string error;
  EXPECT_TRUE(FaultPlan::parse(text, p, error)) << error;
  return p;
}

/// Small all-CC scenario list (cheap rows for sweep-isolation tests).
std::vector<Scenario> cc_scenarios() {
  ScenarioMatrix m;
  m.kernels = {Kernel::kCsrmv};
  m.variants = {kernels::Variant::kBase, kernels::Variant::kIssr};
  m.widths = {sparse::IndexWidth::kU16, sparse::IndexWidth::kU32};
  m.densities = {0.1};
  m.cores = {1};
  m.rows = 24;
  m.cols = 48;
  return m.expand();
}

Scenario single(unsigned cores, unsigned clusters) {
  ScenarioMatrix m;
  m.kernels = {Kernel::kCsrmv};
  m.variants = {kernels::Variant::kIssr};
  m.widths = {sparse::IndexWidth::kU16};
  m.densities = {0.1};
  m.cores = {cores};
  m.clusters = {clusters};
  m.rows = 32;
  m.cols = 48;
  auto list = m.expand();
  EXPECT_EQ(list.size(), 1u);
  return list.at(0);
}

driver::SweepOutcome sweep(const std::vector<Scenario>& scenarios,
                           unsigned jobs, const FaultPlan* inject = nullptr,
                           unsigned retries = 0, bool fail_fast = false) {
  SweepSpec spec;
  spec.scenarios = scenarios;
  spec.jobs = jobs;
  spec.retries = retries;
  spec.fail_fast = fail_fast;
  spec.options.inject = inject;
  return driver::run_sweep(spec);
}

// --- FaultPlan parsing -------------------------------------------------------

TEST(FaultPlan, ParsesKindsAndTargets) {
  const FaultPlan p = plan("corrupt,barrier-drop@sys,throw@csrmv/issr");
  ASSERT_EQ(p.injections().size(), 3u);
  EXPECT_TRUE(p.applies(InjectKind::kCorrupt, "anything"));
  EXPECT_TRUE(p.applies(InjectKind::kBarrierDrop, "csrmv/sys/x2"));
  EXPECT_FALSE(p.applies(InjectKind::kBarrierDrop, "csrmv/cc"));
  EXPECT_TRUE(p.applies(InjectKind::kThrow, "csrmv/issr/u16"));
  EXPECT_FALSE(p.applies(InjectKind::kThrow, "csrmv/base/u16"));
  EXPECT_FALSE(p.applies(InjectKind::kDmaStall, "anything"));
}

TEST(FaultPlan, RejectsUnknownKindWithMessage) {
  FaultPlan p;
  std::string error;
  EXPECT_FALSE(FaultPlan::parse("corrupt,frobnicate", p, error));
  EXPECT_NE(error.find("frobnicate"), std::string::npos) << error;
  EXPECT_FALSE(FaultPlan::parse("", p, error));
  EXPECT_FALSE(FaultPlan::parse(",", p, error));
}

TEST(FaultCodes, TokensAreStable) {
  // The results-file `fault` column and fault_* metric suffixes; a
  // rename is a schema break and must fail here first.
  EXPECT_STREQ(sim::to_string(FaultCode::kWatchdogNoProgress),
               "watchdog_no_progress");
  EXPECT_STREQ(sim::to_string(FaultCode::kBarrierDeadlock),
               "barrier_deadlock");
  EXPECT_STREQ(sim::to_string(FaultCode::kCycleLimit), "cycle_limit");
  EXPECT_STREQ(sim::to_string(FaultCode::kInvalidInput), "invalid_input");
  EXPECT_STREQ(sim::to_string(FaultCode::kInjected), "injected");
  EXPECT_STREQ(sim::to_string(FaultCode::kHostException), "host_exception");
}

// --- validate_csr ------------------------------------------------------------

TEST(ValidateCsr, AcceptsWellFormedAndNamesFirstDefect) {
  const std::vector<std::uint32_t> ptr = {0, 2, 2, 3};
  const std::vector<std::uint32_t> idcs = {0, 3, 1};
  const std::vector<double> vals = {1.0, 2.0, 3.0};
  std::string err;
  EXPECT_TRUE(sparse::validate_csr(3, 4, ptr, idcs, vals, err)) << err;

  auto bad = idcs;
  bad[1] = 4;  // == cols: out of bounds
  EXPECT_FALSE(sparse::validate_csr(3, 4, ptr, bad, vals, err));
  EXPECT_NE(err.find("out of bounds"), std::string::npos) << err;

  auto short_ptr = ptr;
  short_ptr.back() = 2;  // disagrees with the value count
  EXPECT_FALSE(sparse::validate_csr(3, 4, short_ptr, idcs, vals, err));

  auto unsorted = idcs;
  unsorted[0] = 3;
  unsorted[1] = 3;  // duplicate column in row 0
  EXPECT_FALSE(sparse::validate_csr(3, 4, ptr, unsorted, vals, err));
  EXPECT_NE(err.find("row 0"), std::string::npos) << err;
}

// --- Watchdog: exact no-progress detection -----------------------------------

TEST(Watchdog, ClusterBarrierDropIsExactDeadlock) {
  // Workers rendezvous on the HW barrier; swallowing the release parks
  // every core on the barrier CSR with an empty event horizon, so the
  // watchdog proves the wedge the cycle it happens — no budget needed.
  cluster::ClusterConfig cfg;
  std::vector<isa::Program> programs;
  for (unsigned w = 0; w < cfg.num_workers; ++w) {
    isa::Assembler a;
    kernels::emit_barrier(a);
    kernels::emit_halt(a);
    programs.push_back(a.assemble());
  }
  cluster::Cluster cl(cfg, std::move(programs));
  cl.barrier().inject_drop_next_release();
  const auto r = cl.run(1'000'000);
  ASSERT_TRUE(r.fault);
  EXPECT_EQ(r.fault.code, FaultCode::kBarrierDeadlock);
  EXPECT_LT(r.fault.cycle, 1'000'000u) << "detection must be exact, not "
                                          "budget-driven";
  EXPECT_EQ(r.fault.last_next_event, kCycleNever);
  EXPECT_EQ(r.fault.harts.size(), cfg.num_workers);
  EXPECT_NE(r.fault.barrier.find("arrived"), std::string::npos)
      << r.fault.barrier;
  EXPECT_NE(r.fault.describe().find("barrier_deadlock"), std::string::npos);
}

TEST(Watchdog, CleanBarrierRunHasNoFault) {
  cluster::ClusterConfig cfg;
  std::vector<isa::Program> programs;
  for (unsigned w = 0; w < cfg.num_workers; ++w) {
    isa::Assembler a;
    kernels::emit_barrier(a);
    kernels::emit_halt(a);
    programs.push_back(a.assemble());
  }
  cluster::Cluster cl(cfg, std::move(programs));
  const auto r = cl.run(1'000'000);
  EXPECT_FALSE(r.fault);
  EXPECT_FALSE(r.aborted);
}

TEST(Watchdog, EmitsWatchdogTraceTrack) {
  // An aborted run leaves one instant on a dedicated `watchdog` track
  // naming the fault code — the trace-side breadcrumb for a postmortem.
  core::CcSim sim;
  isa::Assembler a;
  const isa::Label spin = a.here();
  a.j(spin);
  sim.set_program(a.assemble());
  trace::RingBufferSink sink;
  sim.attach_trace(sink);
  const auto r = sim.run(100);
  ASSERT_EQ(r.fault.code, FaultCode::kCycleLimit);
  bool found = false;
  for (const auto& t : sink.tracks()) found |= t.name == "watchdog";
  EXPECT_TRUE(found) << "missing watchdog track";
  bool instant = false;
  for (const auto& e : sink.events()) {
    if (e.phase == trace::Phase::kInstant &&
        std::string(e.name) == "cycle_limit") {
      instant = true;
      EXPECT_EQ(e.ts, 100u);
    }
  }
  EXPECT_TRUE(instant) << "missing fault-code instant";
}

// --- Injection through run_scenario ------------------------------------------

TEST(Inject, CycleBudgetYieldsCycleLimitFaultRow) {
  RunOptions opts;
  opts.max_cycles = 16;  // far below any real CsrMV run
  const ScenarioResult r = driver::run_scenario(single(1, 1), opts);
  EXPECT_FALSE(r.ok);
  ASSERT_TRUE(r.fault);
  EXPECT_EQ(r.fault.code, FaultCode::kCycleLimit);
  EXPECT_STREQ(driver::row_status(r), "fault");
  EXPECT_EQ(r.metrics.value("fault_cycle_limit"), 1.0);
}

TEST(Inject, CorruptWorkloadIsRejectedAsInvalidInput) {
  const FaultPlan p = plan("corrupt");
  RunOptions opts;
  opts.inject = &p;
  const ScenarioResult r = driver::run_scenario(single(1, 1), opts);
  ASSERT_TRUE(r.fault);
  EXPECT_EQ(r.fault.code, FaultCode::kInvalidInput);
  EXPECT_NE(r.fault.message.find("corrupted workload rejected"),
            std::string::npos)
      << r.fault.message;
}

TEST(Inject, FaultMarkerSkipsTheRun) {
  const FaultPlan p = plan("fault");
  RunOptions opts;
  opts.inject = &p;
  const ScenarioResult r = driver::run_scenario(single(1, 1), opts);
  ASSERT_TRUE(r.fault);
  EXPECT_EQ(r.fault.code, FaultCode::kInjected);
  EXPECT_EQ(r.cycles, 0u) << "the simulation must not have run";
}

TEST(Inject, SysBarrierDropDeadlocksExactly) {
  // Dropping the inter-cluster barrier release wedges the system; the
  // budget below is a test safety net the exact watchdog must beat.
  const FaultPlan p = plan("barrier-drop");
  RunOptions opts;
  opts.inject = &p;
  opts.max_cycles = 400'000;
  const ScenarioResult r = driver::run_scenario(single(2, 2), opts);
  ASSERT_TRUE(r.fault);
  EXPECT_EQ(r.fault.code, FaultCode::kBarrierDeadlock)
      << r.fault.describe();
  EXPECT_LT(r.fault.cycle, 400'000u);
  EXPECT_EQ(r.metrics.value("fault_barrier_deadlock"), 1.0);
}

TEST(Inject, DmaStallBurnsToTheBudget) {
  // A frozen DMA keeps the controller polling (forward progress every
  // cycle, never completion), so this hang is only catchable by budget.
  const FaultPlan p = plan("dma-stall");
  RunOptions opts;
  opts.inject = &p;
  opts.max_cycles = 20'000;
  const ScenarioResult r = driver::run_scenario(single(4, 1), opts);
  ASSERT_TRUE(r.fault);
  EXPECT_EQ(r.fault.code, FaultCode::kCycleLimit) << r.fault.describe();
  EXPECT_EQ(r.fault.cycle, 20'000u);
}

// --- Compiled-tier fault parity ----------------------------------------------
//
// The compiled tier must not change *how runs fail*: the watchdog, the
// cycle budget, and every injection kind detect at the identical cycle
// with identical fault detail. Each test runs the same failure under
// both tiers and compares the full fault record (and, through the
// result-row JSON, the v6 fault_detail columns byte for byte).

/// Toggle the process-wide compiled-tier default for one scope.
class ScopedCompiled {
 public:
  explicit ScopedCompiled(bool on) : prev_(core::engine_compiled_default()) {
    core::set_engine_compiled_default(on);
  }
  ~ScopedCompiled() { core::set_engine_compiled_default(prev_); }

 private:
  bool prev_;
};

void expect_faults_equal(const sim::Fault& compiled, const sim::Fault& interp,
                         const std::string& what) {
  EXPECT_EQ(compiled.code, interp.code) << what;
  EXPECT_EQ(compiled.cycle, interp.cycle) << what;
  EXPECT_EQ(compiled.last_next_event, interp.last_next_event) << what;
  EXPECT_EQ(compiled.message, interp.message) << what;
  EXPECT_EQ(compiled.barrier, interp.barrier) << what;
  EXPECT_EQ(compiled.stalls, interp.stalls) << what << " (stall buckets)";
  ASSERT_EQ(compiled.harts.size(), interp.harts.size()) << what;
  for (std::size_t h = 0; h < compiled.harts.size(); ++h) {
    EXPECT_EQ(compiled.harts[h].pc, interp.harts[h].pc) << what << " hart "
                                                        << h;
    EXPECT_EQ(compiled.harts[h].halted, interp.harts[h].halted) << what;
  }
  EXPECT_EQ(compiled.describe(), interp.describe()) << what;
}

/// A single-CC run that wedges with an empty event horizon: the FREP
/// consumes one more stream element than the affine job supplies, so the
/// FPU subsystem waits forever on a lane that can never produce.
core::CcSimResult run_starved_stream_cc() {
  core::CcSim sim;
  const addr_t data = sim.alloc(64);
  isa::Assembler a;
  kernels::emit_affine_job(a, 0, data, /*n=*/1, /*stride=*/8);
  kernels::emit_ssr_enable(a);
  a.li(isa::kT0, 1);  // two iterations; the job supplies one element
  a.frep(isa::kT0, 1);
  a.fadd_d(isa::kFt2, isa::kFt0, isa::kFt2);
  kernels::emit_sync_and_disable(a);
  kernels::emit_halt(a);
  sim.set_program(a.assemble());
  return sim.run(1'000'000);
}

TEST(CompiledParity, WatchdogNoProgressDetectsAtIdenticalCycle) {
  core::CcSimResult compiled, interp;
  {
    ScopedCompiled tier(true);
    compiled = run_starved_stream_cc();
  }
  {
    ScopedCompiled tier(false);
    interp = run_starved_stream_cc();
  }
  ASSERT_TRUE(interp.fault);
  EXPECT_EQ(interp.fault.code, FaultCode::kWatchdogNoProgress)
      << interp.fault.describe();
  EXPECT_EQ(interp.fault.last_next_event, kCycleNever);
  EXPECT_LT(interp.fault.cycle, 1'000'000u) << "detection must be exact";
  EXPECT_EQ(compiled.cycles, interp.cycles);
  expect_faults_equal(compiled.fault, interp.fault, "starved stream");
}

TEST(CompiledParity, CycleLimitFaultsAtIdenticalCycle) {
  const auto spin = [] {
    core::CcSim sim;
    isa::Assembler a;
    const isa::Label loop = a.here();
    a.j(loop);
    sim.set_program(a.assemble());
    return sim.run(100);
  };
  core::CcSimResult compiled, interp;
  {
    ScopedCompiled tier(true);
    compiled = spin();
  }
  {
    ScopedCompiled tier(false);
    interp = spin();
  }
  ASSERT_TRUE(interp.fault);
  EXPECT_EQ(interp.fault.code, FaultCode::kCycleLimit);
  EXPECT_EQ(interp.fault.cycle, 100u);
  EXPECT_EQ(compiled.cycles, interp.cycles);
  expect_faults_equal(compiled.fault, interp.fault, "cycle limit");
}

TEST(CompiledParity, ClusterBarrierDropDeadlocksAtIdenticalCycle) {
  const auto wedge = [] {
    cluster::ClusterConfig cfg;
    std::vector<isa::Program> programs;
    for (unsigned w = 0; w < cfg.num_workers; ++w) {
      isa::Assembler a;
      kernels::emit_barrier(a);
      kernels::emit_halt(a);
      programs.push_back(a.assemble());
    }
    cluster::Cluster cl(cfg, std::move(programs));
    cl.barrier().inject_drop_next_release();
    return cl.run(1'000'000);
  };
  cluster::ClusterResult compiled, interp;
  {
    ScopedCompiled tier(true);
    compiled = wedge();
  }
  {
    ScopedCompiled tier(false);
    interp = wedge();
  }
  ASSERT_TRUE(interp.fault);
  EXPECT_EQ(interp.fault.code, FaultCode::kBarrierDeadlock);
  EXPECT_EQ(compiled.cycles, interp.cycles);
  expect_faults_equal(compiled.fault, interp.fault, "barrier drop");
}

TEST(CompiledParity, EveryInjectKindMatchesInterpreterByteForByte) {
  // Each kind rides its canonical scenario/budget (the ones the Inject
  // tests above pin); the whole result row — status, cycles, metrics,
  // and the v6 fault_detail object — must serialize identically.
  struct Case {
    const char* kind;
    unsigned cores, clusters;
    cycle_t max_cycles;
  };
  const Case cases[] = {
      {"corrupt", 1, 1, 0},           {"barrier-drop", 2, 2, 400'000},
      {"dma-stall", 4, 1, 20'000},    {"throw", 1, 1, 0},
      {"flaky", 1, 1, 0},             {"fault", 1, 1, 0},
  };
  for (const auto& c : cases) {
    const FaultPlan p = plan(c.kind);
    const auto row = [&] {
      std::vector<Scenario> list = {single(c.cores, c.clusters)};
      SweepSpec spec;
      spec.scenarios = list;
      spec.jobs = 1;
      spec.options.inject = &p;
      spec.options.max_cycles = c.max_cycles;
      return driver::run_sweep(spec).results;
    };
    std::vector<ScenarioResult> compiled, interp;
    {
      ScopedCompiled tier(true);
      compiled = row();
    }
    {
      ScopedCompiled tier(false);
      interp = row();
    }
    ASSERT_EQ(compiled.size(), 1u) << c.kind;
    ASSERT_EQ(interp.size(), 1u) << c.kind;
    EXPECT_EQ(driver::results_to_json(compiled),
              driver::results_to_json(interp))
        << "inject kind " << c.kind;
    EXPECT_EQ(driver::results_to_csv(compiled), driver::results_to_csv(interp))
        << "inject kind " << c.kind;
  }
}

// --- Sweep isolation, retry, fail-fast ---------------------------------------

TEST(SweepFaults, OneThrowingRowLeavesEveryOtherRowIntact) {
  const auto scenarios = cc_scenarios();
  ASSERT_GE(scenarios.size(), 3u);
  const std::string victim = scenarios[1].name();
  const FaultPlan p = plan("throw@" + victim);

  const auto ref = sweep(scenarios, 1);  // clean reference
  for (const unsigned jobs : {1u, 2u, 8u}) {
    const auto out = sweep(scenarios, jobs, &p);
    ASSERT_EQ(out.results.size(), scenarios.size());
    EXPECT_EQ(out.stats.fault_rows, 1u);
    for (std::size_t i = 0; i < out.results.size(); ++i) {
      const auto& r = out.results[i];
      if (scenarios[i].name() == victim) {
        ASSERT_TRUE(r.fault);
        EXPECT_EQ(r.fault.code, FaultCode::kHostException);
        EXPECT_NE(r.fault.message.find("injected host exception"),
                  std::string::npos);
      } else {
        // Bytewise untouched by the neighbour's failure.
        EXPECT_FALSE(r.fault);
        EXPECT_TRUE(r.ok);
        EXPECT_EQ(driver::results_to_json({r}),
                  driver::results_to_json({ref.results[i]}));
      }
    }
    // The whole injected document is jobs-invariant too.
    EXPECT_EQ(driver::results_to_json(out.results),
              driver::results_to_json(sweep(scenarios, 1, &p).results))
        << "jobs=" << jobs;
  }
}

TEST(SweepFaults, RetryHealsFlakyHostDeterministically) {
  const auto scenarios = cc_scenarios();
  const auto ref = sweep(scenarios, 2);
  const FaultPlan flaky = plan("flaky");

  // With one retry every row heals, and — because retry reruns the same
  // pure function with the same seed — the result files are bytewise
  // identical to the never-failed sweep.
  const auto healed = sweep(scenarios, 2, &flaky, /*retries=*/1);
  EXPECT_EQ(healed.stats.fault_rows, 0u);
  EXPECT_EQ(healed.stats.host_retries, scenarios.size());
  EXPECT_EQ(healed.host_metrics.value("host_retries"),
            static_cast<double>(scenarios.size()));
  EXPECT_EQ(driver::results_to_json(healed.results),
            driver::results_to_json(ref.results));
  EXPECT_EQ(driver::results_to_csv(healed.results),
            driver::results_to_csv(ref.results));

  // Without retries every row records the host exception.
  const auto failed = sweep(scenarios, 2, &flaky, /*retries=*/0);
  EXPECT_EQ(failed.stats.fault_rows, scenarios.size());
  for (const auto& r : failed.results) {
    ASSERT_TRUE(r.fault);
    EXPECT_EQ(r.fault.code, FaultCode::kHostException);
  }
}

TEST(SweepFaults, SimulatedFaultsAreNeverRetried) {
  const auto scenarios = cc_scenarios();
  const FaultPlan p = plan("fault");
  const auto out = sweep(scenarios, 2, &p, /*retries=*/3);
  EXPECT_EQ(out.stats.host_retries, 0u)
      << "simulated faults are deterministic; retrying them is waste";
  EXPECT_EQ(out.stats.fault_rows, scenarios.size());
}

TEST(SweepFaults, FailFastSkipsRemainingRows) {
  const auto scenarios = cc_scenarios();
  const FaultPlan p = plan("fault");
  const auto out =
      sweep(scenarios, 1, &p, /*retries=*/0, /*fail_fast=*/true);
  EXPECT_EQ(out.stats.fault_rows, 1u);
  EXPECT_EQ(out.stats.skipped_rows, scenarios.size() - 1);
  unsigned skipped = 0;
  for (const auto& r : out.results) {
    if (r.skipped) {
      ++skipped;
      EXPECT_STREQ(driver::row_status(r), "skipped");
      EXPECT_FALSE(r.fault);
    }
  }
  EXPECT_EQ(skipped, scenarios.size() - 1);
}

// --- v6 reporting ------------------------------------------------------------

TEST(SweepFaults, FaultRowsCarryV6ColumnsAndDiagnostics) {
  const auto scenarios = cc_scenarios();
  const FaultPlan p = plan("fault");
  const auto out = sweep(scenarios, 2, &p);
  const std::string json = driver::results_to_json(out.results);
  EXPECT_NE(json.find("\"status\": \"fault\""), std::string::npos);
  EXPECT_NE(json.find("\"fault\": \"injected\""), std::string::npos);
  EXPECT_NE(json.find("\"fault_detail\": {\"code\": \"injected\""),
            std::string::npos);
  EXPECT_NE(json.find("\"fault_injected\": 1"), std::string::npos);
  const std::string csv = driver::results_to_csv(out.results);
  EXPECT_NE(csv.find(",status,fault,"), std::string::npos);
  EXPECT_NE(csv.find(",false,fault,injected,"), std::string::npos);
}

TEST(SweepFaults, NoOpInjectionPlanIsByteIdenticalToNoPlan) {
  // A plan whose target matches nothing must be indistinguishable from
  // running without --inject — the injection-off byte-identity bar.
  const auto scenarios = cc_scenarios();
  const FaultPlan miss = plan("throw@no_such_scenario,corrupt@nope");
  const auto ref = sweep(scenarios, 1);
  for (const unsigned jobs : {1u, 2u, 8u}) {
    const auto out = sweep(scenarios, jobs, &miss);
    EXPECT_EQ(driver::results_to_json(out.results),
              driver::results_to_json(ref.results))
        << "jobs=" << jobs;
    EXPECT_EQ(driver::results_to_csv(out.results),
              driver::results_to_csv(ref.results))
        << "jobs=" << jobs;
  }
}

}  // namespace
}  // namespace issr
