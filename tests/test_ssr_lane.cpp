// Streamer lane tests: affine address sequences, repetition, the
// indirection datapath (index serialization at both widths and arbitrary
// alignment, shift datapath), write streams, shadowed job chaining, and
// the round-robin port mux's bandwidth split.
#include <gtest/gtest.h>

#include <bit>

#include "mem/ideal_mem.hpp"
#include "ssr/lane.hpp"
#include "ssr/port_hub.hpp"

namespace issr::ssr {
namespace {

constexpr addr_t kBase = 0x1000'0000;

class LaneHarness {
 public:
  explicit LaneHarness(LaneParams params, cycle_t latency = 1)
      : mem_(1, latency), hub_(mem_.port(0)) {
    lane_ = std::make_unique<Lane>(params, hub_.add_client());
  }

  mem::BackingStore& store() { return mem_.store(); }
  Lane& lane() { return *lane_; }

  /// Run one cycle; pop at most `max_pops` ready data elements.
  std::vector<double> step(unsigned max_pops = 1) {
    mem_.tick(now_);
    hub_.tick();
    std::vector<double> popped;
    for (unsigned i = 0; i < max_pops && lane_->can_pop(); ++i) {
      popped.push_back(lane_->pop());
    }
    lane_->tick(now_);
    ++now_;
    return popped;
  }

  /// Drain `count` elements, failing the test on non-termination.
  std::vector<double> drain(std::size_t count, unsigned max_pops = 1) {
    std::vector<double> out;
    cycle_t guard = 0;
    while (out.size() < count) {
      const auto p = step(max_pops);
      out.insert(out.end(), p.begin(), p.end());
      if (++guard >= 100000u) {
        ADD_FAILURE() << "lane did not deliver " << count << " elements";
        return out;
      }
    }
    return out;
  }

  cycle_t now() const { return now_; }

 private:
  mem::IdealMemory mem_;
  PortHub hub_;
  std::unique_ptr<Lane> lane_;
  cycle_t now_ = 0;
};

LaneParams ssr_params() {
  LaneParams p;
  p.has_indirection = false;
  return p;
}

LaneParams issr_params() {
  LaneParams p;
  p.has_indirection = true;
  return p;
}

TEST(Lane, Affine1dStreamsInOrder) {
  LaneHarness h(ssr_params());
  for (int i = 0; i < 16; ++i) h.store().store_f64(kBase + 8 * i, i * 1.5);
  h.lane().submit(make_affine_1d(kBase, 16));
  std::vector<double> out;
  ASSERT_NO_FATAL_FAILURE(out = h.drain(16));
  for (int i = 0; i < 16; ++i) EXPECT_EQ(out[i], i * 1.5);
  EXPECT_FALSE(h.lane().active());
}

TEST(Lane, AffineNegativeStride) {
  LaneHarness h(ssr_params());
  for (int i = 0; i < 8; ++i) h.store().store_f64(kBase + 8 * i, i);
  h.lane().submit(make_affine_1d(kBase + 8 * 7, 8, -8));
  std::vector<double> out;
  ASSERT_NO_FATAL_FAILURE(out = h.drain(8));
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[i], 7 - i);
}

TEST(Lane, AffineNestedLoops) {
  // 2-D job: 3 rows of 4 elements with a row gap.
  LaneHarness h(ssr_params());
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 4; ++c)
      h.store().store_f64(kBase + r * 64 + c * 8, r * 10 + c);
  LaneJob job;
  job.bound[0] = 3;
  job.stride[0] = 8;
  job.bound[1] = 2;
  job.stride[1] = 64;
  job.data_base = kBase;
  h.lane().submit(job);
  std::vector<double> out;
  ASSERT_NO_FATAL_FAILURE(out = h.drain(12));
  std::vector<double> expect;
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 4; ++c) expect.push_back(r * 10 + c);
  EXPECT_EQ(out, expect);
}

TEST(Lane, RepetitionEmitsEachDatumMultipleTimes) {
  LaneHarness h(ssr_params());
  h.store().store_f64(kBase, 5.0);
  h.store().store_f64(kBase + 8, 6.0);
  h.lane().submit(make_affine_1d(kBase, 2, 8, false, /*reps=*/2));
  std::vector<double> out;
  ASSERT_NO_FATAL_FAILURE(out = h.drain(6));
  EXPECT_EQ(out, (std::vector<double>{5, 5, 5, 6, 6, 6}));
}

class LaneIndirect : public ::testing::TestWithParam<sparse::IndexWidth> {};

TEST_P(LaneIndirect, GathersAtIndices) {
  const auto width = GetParam();
  LaneHarness h(issr_params());
  for (int i = 0; i < 64; ++i) h.store().store_f64(kBase + 8 * i, 100.0 + i);
  const std::vector<std::uint32_t> idcs = {5, 0, 63, 7, 7, 1, 33, 12, 2};
  const addr_t idx_base = kBase + 0x4000;
  const auto packed = sparse::pack_indices(idcs, width);
  h.store().write_block(idx_base, packed.data(), packed.size());
  h.lane().submit(make_indirect(kBase, idx_base, idcs.size(), width));
  std::vector<double> out;
  ASSERT_NO_FATAL_FAILURE(out = h.drain(idcs.size()));
  for (std::size_t i = 0; i < idcs.size(); ++i) {
    EXPECT_EQ(out[i], 100.0 + idcs[i]);
  }
}

TEST_P(LaneIndirect, SupportsArbitraryIndexAlignment) {
  const auto width = GetParam();
  const unsigned ib = sparse::index_bytes(width);
  for (unsigned mis = ib; mis < 8; mis += ib) {
    LaneHarness h(issr_params());
    for (int i = 0; i < 32; ++i) h.store().store_f64(kBase + 8 * i, i);
    const std::vector<std::uint32_t> idcs = {3, 1, 4, 1, 5, 9, 2, 6};
    const addr_t idx_base = kBase + 0x4000 + mis;
    const auto packed = sparse::pack_indices(idcs, width);
    h.store().write_block(idx_base, packed.data(), packed.size());
    h.lane().submit(make_indirect(kBase, idx_base, idcs.size(), width));
    std::vector<double> out;
    ASSERT_NO_FATAL_FAILURE(out = h.drain(idcs.size()));
    for (std::size_t i = 0; i < idcs.size(); ++i) {
      EXPECT_EQ(out[i], idcs[i]) << "misalignment " << mis;
    }
  }
}

TEST_P(LaneIndirect, ExtraShiftAddressesStridedTensors) {
  const auto width = GetParam();
  LaneHarness h(issr_params());
  // Data at stride 32 bytes (ld = 4 elements): element k at kBase + k*32.
  for (int k = 0; k < 16; ++k) h.store().store_f64(kBase + 32 * k, k * 2.0);
  const std::vector<std::uint32_t> idcs = {0, 3, 15, 8};
  const addr_t idx_base = kBase + 0x4000;
  const auto packed = sparse::pack_indices(idcs, width);
  h.store().write_block(idx_base, packed.data(), packed.size());
  h.lane().submit(
      make_indirect(kBase, idx_base, idcs.size(), width, /*idx_shift=*/2));
  std::vector<double> out;
  ASSERT_NO_FATAL_FAILURE(out = h.drain(idcs.size()));
  for (std::size_t i = 0; i < idcs.size(); ++i) {
    EXPECT_EQ(out[i], idcs[i] * 2.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, LaneIndirect,
                         ::testing::Values(sparse::IndexWidth::kU16,
                                           sparse::IndexWidth::kU32),
                         [](const auto& info) {
                           return info.param == sparse::IndexWidth::kU16
                                      ? "u16"
                                      : "u32";
                         });

TEST(Lane, PortMuxCeilings) {
  // Steady-state data delivery of an indirect read stream is capped by
  // the index/data round-robin mux: 4/5 at 16-bit, 2/3 at 32-bit.
  for (const auto width :
       {sparse::IndexWidth::kU16, sparse::IndexWidth::kU32}) {
    LaneHarness h(issr_params());
    const std::uint32_t n = 4000;
    std::vector<std::uint32_t> idcs(n);
    for (std::uint32_t i = 0; i < n; ++i) idcs[i] = i % 64;
    for (int i = 0; i < 64; ++i) h.store().store_f64(kBase + 8 * i, i);
    const addr_t idx_base = kBase + 0x8000;
    const auto packed = sparse::pack_indices(idcs, width);
    h.store().write_block(idx_base, packed.data(), packed.size());
    h.lane().submit(make_indirect(kBase, idx_base, n, width));
    std::size_t delivered = 0;
    const cycle_t start = h.now();
    while (delivered < n) {
      delivered += h.step(/*max_pops=*/4).size();
      ASSERT_LT(h.now(), start + 3 * n);
    }
    const double rate = static_cast<double>(n) /
                        static_cast<double>(h.now() - start);
    const double ceiling = width == sparse::IndexWidth::kU16 ? 0.8 : 2.0 / 3;
    EXPECT_NEAR(rate, ceiling, 0.02);
  }
}

TEST(Lane, WriteStreamStoresAffine) {
  LaneHarness h(ssr_params());
  h.lane().submit(make_affine_1d(kBase, 4, 8, /*write=*/true));
  double next = 1.25;
  cycle_t guard = 0;
  while (h.lane().active()) {
    if (h.lane().can_push()) {
      h.lane().push(next);
      next += 1.0;
    }
    h.step(0);
    ASSERT_LT(++guard, 1000u);
  }
  // Let the final store land.
  h.step(0);
  h.step(0);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(h.store().load_f64(kBase + 8 * i), 1.25 + i);
  }
}

TEST(Lane, WriteStreamScattersIndirect) {
  LaneHarness h(issr_params());
  const std::vector<std::uint32_t> idcs = {9, 2, 31, 5};
  const addr_t idx_base = kBase + 0x4000;
  const auto packed = sparse::pack_indices(idcs, sparse::IndexWidth::kU32);
  h.store().write_block(idx_base, packed.data(), packed.size());
  h.lane().submit(make_indirect(kBase, idx_base, idcs.size(),
                                sparse::IndexWidth::kU32, 0, /*write=*/true));
  double next = 10.0;
  cycle_t guard = 0;
  while (h.lane().active()) {
    if (h.lane().can_push()) h.lane().push(next++);
    h.step(0);
    ASSERT_LT(++guard, 1000u);
  }
  h.step(0);
  h.step(0);
  for (std::size_t i = 0; i < idcs.size(); ++i) {
    EXPECT_EQ(h.store().load_f64(kBase + 8 * idcs[i]), 10.0 + i);
  }
}

TEST(Lane, ShadowJobStartsAfterCurrent) {
  LaneHarness h(ssr_params());
  for (int i = 0; i < 8; ++i) {
    h.store().store_f64(kBase + 8 * i, i);
    h.store().store_f64(kBase + 0x100 + 8 * i, 50.0 + i);
  }
  h.lane().submit(make_affine_1d(kBase, 4));
  EXPECT_TRUE(h.lane().can_accept_job());  // shadow free while job runs
  h.lane().submit(make_affine_1d(kBase + 0x100, 4));
  EXPECT_FALSE(h.lane().can_accept_job());  // shadow now occupied
  std::vector<double> out;
  ASSERT_NO_FATAL_FAILURE(out = h.drain(8));
  EXPECT_EQ(out, (std::vector<double>{0, 1, 2, 3, 50, 51, 52, 53}));
}

TEST(Lane, StatsCountTraffic) {
  LaneHarness h(issr_params());
  const std::vector<std::uint32_t> idcs = {0, 1, 2, 3, 4, 5, 6, 7};
  const addr_t idx_base = kBase + 0x4000;
  const auto packed = sparse::pack_indices(idcs, sparse::IndexWidth::kU32);
  h.store().write_block(idx_base, packed.data(), packed.size());
  h.lane().submit(
      make_indirect(kBase, idx_base, idcs.size(), sparse::IndexWidth::kU32));
  ASSERT_NO_FATAL_FAILURE(h.drain(8));
  EXPECT_EQ(h.lane().stats().elems_read, 8u);
  EXPECT_EQ(h.lane().stats().data_reqs, 8u);
  EXPECT_EQ(h.lane().stats().idx_word_reqs, 4u);  // 2 indices per word
  EXPECT_EQ(h.lane().stats().jobs_started, 1u);
}

}  // namespace
}  // namespace issr::ssr
