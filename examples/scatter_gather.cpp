// Scatter-gather streaming (§III-C): the ISSR as a streaming scatter-
// gather unit. Demonstrates gathering a permutation, densifying a sparse
// fiber by nonzero scattering, and sparse accumulate-onto-dense — the
// building blocks of radix sort partitioning and sparse transposition.
//
//   $ ./examples/scatter_gather
#include <cstdio>

#include "common/rng.hpp"
#include "core/sim.hpp"
#include "kernels/scatter_gather.hpp"
#include "sparse/generate.hpp"
#include "sparse/reference.hpp"

using namespace issr;

int main() {
  std::printf("ISSR scatter-gather streaming\n\n");
  Rng rng(11);

  // 1. Gather through a random permutation.
  {
    const std::uint32_t n = 512;
    std::vector<std::uint32_t> perm(n);
    for (std::uint32_t i = 0; i < n; ++i) perm[i] = i;
    rng.shuffle(perm);
    const auto src = sparse::random_dense_vector(rng, n);

    core::CcSim sim;
    kernels::GatherArgs args;
    args.src = sim.stage(src);
    args.idcs = sim.stage_indices(perm, sparse::IndexWidth::kU16);
    args.count = n;
    args.out = sim.alloc(8ull * n);
    args.width = sparse::IndexWidth::kU16;
    sim.set_program(kernels::build_gather(args));
    const auto run = sim.run();

    const auto got = sparse::DenseVector(sim.read_f64s(args.out, n));
    const auto expect = sparse::ref_gather(src, perm);
    std::printf("gather  : %u elements in %llu cycles (%.2f/elem)  %s\n", n,
                static_cast<unsigned long long>(run.cycles),
                static_cast<double>(run.cycles) / n,
                sparse::max_abs_diff(got, expect) == 0.0 ? "OK" : "FAIL");
  }

  // 2. Densify a sparse fiber by scattering its nonzeros.
  {
    const auto fiber = sparse::random_sparse_vector(rng, 2048, 300);
    core::CcSim sim;
    kernels::ScatterArgs args;
    args.src = sim.stage(fiber.vals());
    args.idcs = sim.stage_indices(fiber.idcs(), sparse::IndexWidth::kU16);
    args.count = fiber.nnz();
    args.dst = sim.alloc(8ull * fiber.dim());
    args.width = sparse::IndexWidth::kU16;
    sim.set_program(kernels::build_scatter(args));
    const auto run = sim.run();

    const auto got =
        sparse::DenseVector(sim.read_f64s(args.dst, fiber.dim()));
    std::printf("scatter : %u nonzeros densified in %llu cycles "
                "(%.2f/elem)  %s\n",
                fiber.nnz(), static_cast<unsigned long long>(run.cycles),
                static_cast<double>(run.cycles) / fiber.nnz(),
                sparse::max_abs_diff(got, fiber.densify()) == 0.0 ? "OK"
                                                                  : "FAIL");
  }

  // 3. Sparse accumulate-onto-dense: y[idcs[j]] += vals[j].
  {
    const auto fiber = sparse::random_sparse_vector(rng, 1024, 200);
    const auto y0 = sparse::random_dense_vector(rng, 1024);
    core::CcSim sim;
    kernels::SparseAxpyArgs args;
    args.vals = sim.stage(fiber.vals());
    args.idcs = sim.stage_indices(fiber.idcs(), sparse::IndexWidth::kU16);
    args.count = fiber.nnz();
    args.y = sim.stage(y0);
    args.scratch = sim.alloc(8ull * fiber.nnz());
    args.width = sparse::IndexWidth::kU16;
    sim.set_program(kernels::build_sparse_axpy(args));
    const auto run = sim.run();

    auto expect = y0;
    sparse::ref_axpy_sparse_onto_dense(fiber, expect);
    const auto got = sparse::DenseVector(sim.read_f64s(args.y, 1024));
    std::printf("axpy    : %u sparse updates in %llu cycles (%.2f/elem)  %s\n",
                fiber.nnz(), static_cast<unsigned long long>(run.cycles),
                static_cast<double>(run.cycles) / fiber.nnz(),
                sparse::max_abs_diff(got, expect) < 1e-12 ? "OK" : "FAIL");
  }

  std::printf("\nGather pairs an ISSR read stream with an SSR write\n"
              "stream; scatter reverses the roles, with the ISSR's index\n"
              "stream providing store addresses (paper §III-C).\n");
  return 0;
}
