// CsrMM with strided operands (§III-B): multiply a CSR matrix with a
// power-of-two-strided dense matrix, writing a strided result — the
// layout flexibility that lets the same kernels serve row-/column-major
// operands and CSC matrices from either side.
//
//   $ ./examples/csrmm_tiles
#include <cstdio>

#include "common/bitutil.hpp"
#include "common/rng.hpp"
#include "core/sim.hpp"
#include "kernels/csrmm.hpp"
#include "sparse/generate.hpp"
#include "sparse/reference.hpp"

using namespace issr;

int main() {
  std::printf("CsrMM: CSR x dense matrix with strided layouts\n\n");

  Rng rng(3);
  const std::uint32_t rows = 96, cols = 160, row_nnz = 24, b_cols = 8;
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, rows, cols, row_nnz);
  // Dense operand padded to a power-of-two leading dimension, as the
  // paper's index shifter requires; DMA 2-D transfers provide this tiling
  // for free on the real cluster.
  const std::uint32_t ldb = 1u << log2_ceil(b_cols);
  const auto b = sparse::random_dense_matrix(rng, cols, b_cols, ldb);
  std::printf("A: %ux%u (%u nnz/row), B: %ux%u (ld %u)\n", rows, cols,
              row_nnz, cols, b_cols, ldb);

  core::CcSim sim;
  kernels::CsrmmArgs args;
  args.ptr = sim.stage_u32(a.ptr());
  args.idcs = sim.stage_indices(a.idcs(), sparse::IndexWidth::kU16);
  args.vals = sim.stage(a.vals());
  args.nrows = a.rows();
  args.nnz = a.nnz();
  args.b = sim.alloc(8ull * b.storage_elems());
  sim.mem().write_doubles(args.b, b.data(), b.storage_elems());
  args.b_cols = b_cols;
  args.ldb_log2 = log2_exact(ldb);
  args.y = sim.alloc(8ull * rows * b_cols);
  args.ldy = b_cols;
  args.width = sparse::IndexWidth::kU16;

  sim.set_program(kernels::build_csrmm(kernels::Variant::kIssr, args));
  const auto run = sim.run();

  const auto expect = sparse::ref_csrmm(a, b);
  double maxdiff = 0;
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < b_cols; ++c) {
      const double got = sim.read_f64(args.y + 8ull * (r * b_cols + c));
      maxdiff = std::max(maxdiff, std::abs(got - expect.at(r, c)));
    }
  }
  std::printf("result: max |diff| = %.2e  %s\n", maxdiff,
              maxdiff < 1e-9 ? "OK" : "FAIL");
  std::printf("cycles: %llu for %llu MACs -> %.3f FPU utilization\n",
              static_cast<unsigned long long>(run.cycles),
              static_cast<unsigned long long>(
                  static_cast<std::uint64_t>(a.nnz()) * b_cols),
              run.fpu_util());
  std::printf("\nEach dense column re-runs the CsrMV body with the ISSR's\n"
              "data base at &B[0][c] and index shift log2(ldb): per-column\n"
              "overhead is a handful of configuration writes (paper: CsrMM\n"
              "utilization within ~0.1%% of CsrMV).\n");
  return maxdiff < 1e-9 ? 0 : 1;
}
