// Quickstart: build a sparse matrix, run the paper's ISSR-accelerated
// CsrMV on the simulated Snitch core complex, and compare against both the
// golden reference and the scalar BASE kernel.
//
//   $ ./examples/quickstart
//
// Walks through the full public API: workload generation, data staging,
// kernel construction, simulation, and statistics.
#include <cstdio>

#include "common/rng.hpp"
#include "core/sim.hpp"
#include "kernels/csrmv.hpp"
#include "sparse/generate.hpp"
#include "sparse/reference.hpp"

using namespace issr;

int main() {
  std::printf("ISSR quickstart: CsrMV on one simulated Snitch core complex\n\n");

  // 1. Generate a workload: a 200x256 sparse matrix with ~16 nonzeros per
  //    row and a dense vector, following the paper's methodology
  //    (normal values, uniform indices).
  Rng rng(42);
  const auto a = sparse::random_fixed_row_nnz_matrix(rng, 200, 256, 16);
  const auto x = sparse::random_dense_vector(rng, 256);
  std::printf("matrix: %u x %u, %u nonzeros (%.1f per row)\n", a.rows(),
              a.cols(), a.nnz(), a.avg_row_nnz());

  // 2. Run each kernel variant on the simulator.
  struct Outcome {
    const char* name;
    cycle_t cycles;
    double util;
  };
  std::vector<Outcome> outcomes;
  const auto y_ref = sparse::ref_csrmv(a, x);

  for (const auto variant :
       {kernels::Variant::kBase, kernels::Variant::kSsr,
        kernels::Variant::kIssr}) {
    core::CcSim sim;  // ideal 2-port data memory, as in the paper's §IV-A

    // Stage the operands into the simulated memory.
    kernels::CsrmvArgs args;
    args.ptr = sim.stage_u32(a.ptr());
    args.idcs = sim.stage_indices(a.idcs(), sparse::IndexWidth::kU16);
    args.vals = sim.stage(a.vals());
    args.nrows = a.rows();
    args.nnz = a.nnz();
    args.x = sim.stage(x);
    args.y = sim.alloc(8ull * a.rows());
    args.width = sparse::IndexWidth::kU16;

    // Build the kernel program (hand-scheduled assembly, baked addresses)
    // and run to completion.
    sim.set_program(kernels::build_csrmv(variant, args));
    const auto result = sim.run();

    // Validate against the golden reference.
    const sparse::DenseVector y(sim.read_f64s(args.y, a.rows()));
    if (!sparse::allclose(y, y_ref)) {
      std::printf("FAIL: %s result mismatch!\n", kernels::to_string(variant));
      return 1;
    }
    outcomes.push_back(
        {kernels::to_string(variant), result.cycles, result.fpu_util()});
  }

  // 3. Report.
  std::printf("\n%-6s  %10s  %9s  %8s\n", "kernel", "cycles", "FPU util",
              "speedup");
  for (const auto& o : outcomes) {
    std::printf("%-6s  %10llu  %9.3f  %7.2fx\n", o.name,
                static_cast<unsigned long long>(o.cycles), o.util,
                static_cast<double>(outcomes.front().cycles) /
                    static_cast<double>(o.cycles));
  }
  std::printf("\nAll three kernels produced the reference result. The ISSR\n"
              "kernel runs the inner loop as a single fmadd.d under FREP,\n"
              "with the SSR streaming matrix values and the ISSR resolving\n"
              "x[A_idcs[j]] in hardware (paper Listing 1).\n");
  return 0;
}
