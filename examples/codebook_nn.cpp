// Codebook-compressed inference layer (§III-C "codebook decoding"):
// weight matrices of quantized neural networks store a small codebook of
// unique values plus per-weight indices (Han et al.'s deep-compression
// scheme). The ISSR streams the *decoded* weights directly from the
// codebook, so a dense dot product against compressed weights costs the
// same as against raw weights — while shrinking the weight footprint by
// 4-8x.
//
//   $ ./examples/codebook_nn
#include <cstdio>

#include "common/rng.hpp"
#include "core/sim.hpp"
#include "kernels/codebook.hpp"
#include "sparse/generate.hpp"
#include "sparse/reference.hpp"

using namespace issr;

int main() {
  std::printf("Codebook-compressed dot product on the ISSR\n\n");

  Rng rng(7);
  const std::size_t n = 1024;        // one output neuron's weight row
  const std::uint32_t codebook = 16;  // 4-bit quantized weights

  const auto weights = sparse::random_codebook_vector(rng, n, codebook);
  const auto activations = sparse::random_dense_vector(rng, n);

  // Uncompressed footprint: n doubles. Compressed: codebook + 16-bit codes.
  const double raw_kib = n * 8.0 / 1024.0;
  const double comp_kib = (codebook * 8.0 + n * 2.0) / 1024.0;
  std::printf("weights: %zu values, %u-entry codebook\n", n, codebook);
  std::printf("footprint: %.1f KiB raw -> %.1f KiB compressed (%.1fx)\n\n",
              raw_kib, comp_kib, raw_kib / comp_kib);

  core::CcSim sim;
  kernels::CodebookDotArgs args;
  args.codebook = sim.stage(weights.codebook);
  args.codes = sim.stage_indices(weights.indices, sparse::IndexWidth::kU16);
  args.count = static_cast<std::uint32_t>(n);
  args.b = sim.stage(activations);
  args.result = sim.alloc(8);
  args.width = sparse::IndexWidth::kU16;
  sim.set_program(kernels::build_codebook_dot(args));
  const auto run = sim.run();

  const double got = sim.read_f64(args.result);
  const double expect = sparse::ref_codebook_dot(weights, activations);
  std::printf("dot product: %.6f (reference %.6f)\n", got, expect);
  std::printf("cycles: %llu (%.2f per weight), FPU utilization %.3f\n",
              static_cast<unsigned long long>(run.cycles),
              static_cast<double>(run.cycles) / n, run.fpu_util());
  std::printf("\nThe decode is free: the ISSR's index stream reads the\n"
              "codes while its data stream fetches codebook entries —\n"
              "near-identical code and performance to an uncompressed\n"
              "SpVV (paper §III-C).\n");
  return std::abs(got - expect) < 1e-9 ? 0 : 1;
}
