// SpMV on the (synthetic) SuiteSparse suite — the paper's headline
// workload — on the full 8-core cluster with double-buffered DMA
// streaming. Optionally reads a real MatrixMarket file:
//
//   $ ./examples/spmv_suite                # run the built-in suite subset
//   $ ./examples/spmv_suite path/to/m.mtx  # run a real SuiteSparse matrix
#include <cstdio>

#include "cluster/csrmv_mc.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "model/energy.hpp"
#include "sparse/io.hpp"
#include "sparse/reference.hpp"
#include "sparse/suite.hpp"

using namespace issr;

namespace {

void run_matrix(Table& table, const std::string& name,
                const sparse::CsrMatrix& a) {
  if (!a.fits_u16()) {
    std::printf("skipping %s: column indices exceed 16 bits\n", name.c_str());
    return;
  }
  Rng rng(1);
  const auto x = sparse::random_dense_vector(rng, a.cols());
  const auto y_ref = sparse::ref_csrmv(a, x);

  cluster::McCsrmvConfig cfg;
  cfg.width = sparse::IndexWidth::kU16;

  cfg.variant = kernels::Variant::kBase;
  const auto base = cluster::run_csrmv_multicore(a, x, cfg);
  cfg.variant = kernels::Variant::kIssr;
  const auto issr = cluster::run_csrmv_multicore(a, x, cfg);

  if (!sparse::allclose(base.y, y_ref) || !sparse::allclose(issr.y, y_ref)) {
    std::printf("FAIL: %s cluster result mismatch\n", name.c_str());
    std::exit(1);
  }

  const auto base_e = model::estimate_energy(base.cluster);
  const auto issr_e = model::estimate_energy(issr.cluster);
  table.add_row(
      {name, fmt_u(a.nnz()), fmt_f(a.avg_row_nnz(), 1),
       fmt_u(base.cluster.cycles), fmt_u(issr.cluster.cycles),
       fmt_speedup(static_cast<double>(base.cluster.cycles) /
                   static_cast<double>(issr.cluster.cycles)),
       fmt_speedup(base_e.pj_per_fmadd / issr_e.pj_per_fmadd)});
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("Cluster SpMV (8 Snitch cores, double-buffered DMA)\n\n");
  Table table("BASE vs ISSR-16 on the cluster");
  table.set_header({"matrix", "nnz", "nnz/row", "BASE cyc", "ISSR cyc",
                    "speedup", "energy gain"});

  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      run_matrix(table, argv[i], sparse::read_mtx_csr(argv[i]));
    }
  } else {
    for (const auto& name : sparse::quick_suite_names()) {
      run_matrix(table, name, sparse::build_suite_matrix(name));
    }
  }
  table.print();
  std::printf("(drop any SuiteSparse .mtx file on the command line to run "
              "the real matrix)\n");
  return 0;
}
