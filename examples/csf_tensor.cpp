// CSF tensor-times-vector (§III-A): fiber-based formats generalize beyond
// matrices. A third-order CSF tensor is a tree of sparse fibers; its
// mode-2 tensor-times-vector product runs each leaf fiber through exactly
// the ISSR SpVV kernel. This example walks the CSF tree on the host (the
// role the paper assigns to high-level iterators on the Snitch core) and
// dispatches each leaf fiber to the simulated CC.
//
//   $ ./examples/csf_tensor
#include <cstdio>

#include "common/rng.hpp"
#include "core/sim.hpp"
#include "kernels/spvv.hpp"
#include "sparse/csf.hpp"
#include "sparse/generate.hpp"

using namespace issr;

int main() {
  std::printf("CSF tensor-times-vector via ISSR SpVV per leaf fiber\n\n");

  Rng rng(5);
  const std::uint32_t di = 12, dj = 16, dk = 512, nnz = 900;
  const auto tensor = sparse::random_csf_tensor(rng, di, dj, dk, nnz);
  const auto v = sparse::random_dense_vector(rng, dk);
  std::printf("tensor: %u x %u x %u, %u nonzeros in %u fibers "
              "(%u nonempty slices)\n",
              di, dj, dk, tensor.nnz(), tensor.num_fibers(),
              tensor.num_slices());

  // One simulator instance; the dense vector stays resident (TCDM
  // stationarity) while fibers stream through per-fiber SpVV programs.
  core::CcSim sim;
  const addr_t v_addr = sim.stage(v);
  const addr_t result_addr = sim.alloc(8);

  sparse::DenseMatrix y(di, dj);
  cycle_t total_cycles = 0;
  std::uint64_t total_fmadd = 0;
  for (std::uint32_t s = 0; s < tensor.num_slices(); ++s) {
    for (std::uint32_t f = tensor.fiber_ptr()[s]; f < tensor.fiber_ptr()[s + 1];
         ++f) {
      const auto fiber = tensor.leaf_fiber(f);
      kernels::SpvvArgs args;
      args.a_vals = sim.stage(fiber.vals());
      args.a_idcs = sim.stage_indices(fiber.idcs(), sparse::IndexWidth::kU16);
      args.nnz = fiber.nnz();
      args.b = v_addr;
      args.result = result_addr;
      args.width = sparse::IndexWidth::kU16;
      sim.set_program(kernels::build_spvv(kernels::Variant::kIssr, args));
      const auto run = sim.run();
      total_cycles += run.cycles;
      total_fmadd += run.fpss.fmadd;
      y.at(tensor.slice_idcs()[s], tensor.fiber_idcs()[f]) =
          sim.read_f64(result_addr);
    }
  }

  const auto expect = tensor.ttv_mode2(v);
  const double diff = sparse::max_abs_diff(y, expect);
  std::printf("result: max |diff| vs reference = %.2e  %s\n", diff,
              diff < 1e-9 ? "OK" : "FAIL");
  std::printf("cycles: %llu total (%.2f per nonzero, incl. per-fiber "
              "setup)\n",
              static_cast<unsigned long long>(total_cycles),
              static_cast<double>(total_cycles) / tensor.nnz());
  std::printf("\nShort fibers pay the SpVV setup cost — the same effect\n"
              "that motivates the paper's row-unrolled CsrMV; a production\n"
              "CSF kernel would batch fibers exactly the same way.\n");
  return diff < 1e-9 ? 0 : 1;
}
